(** The observer.

    Translates system-call events into provenance records (paper, Section
    5.3).  The interceptor in the simulated kernel reports each relevant
    system call here; the observer issues the corresponding DPAPI calls to
    the analyzer below it.  It is also the entry point for
    provenance-aware applications disclosing provenance explicitly. *)

type t

exception Lower_error of string
(** The DPAPI chain below the observer refused an object creation the
    observer cannot proceed without (a [pass_mkobj] for a process seen
    for the first time).  This is a wiring failure of the surrounding
    kernel/harness, not an event-stream condition, so it is deliberately
    an exception rather than a [Dpapi.error]: the paper's shim fails
    loudly instead of dropping provenance. *)

type stats = { mutable events : int; mutable records_emitted : int }

val create :
  ?registry:Telemetry.registry ->
  ?tracer:Pvtrace.t ->
  ?batch:bool ->
  ctx:Ctx.t ->
  lower:Dpapi.endpoint ->
  unit ->
  t
(** [create ~ctx ~lower ()] builds an observer whose lower layer is
    normally the analyzer.  [registry] receives the [observer.*]
    instruments (default {!Telemetry.default}); [tracer] (default
    {!Pvtrace.disabled}) records an "observer.emit" event per disclosed
    record batch.

    With [batch] (the default) emissions that carry only non-ancestry
    records for known virtual objects are accumulated per syscall burst
    and handed to the analyzer as one bundle at the next flush point — an
    ancestry record, a data write, a freeze/sync, or {!flush}.  The
    analyzer and distributor see the identical record stream either way
    (same order, same dedup keys, same cycle-avoidance decisions), so the
    resulting provenance graph is exactly the unbatched one;
    [~batch:false] restores emit-at-event-time for A/B comparison. *)

val flush : t -> (unit, Dpapi.error) result
(** Hand any queued burst downstream as one bundle.  Called internally at
    every batch boundary; callers that read the databases (drain,
    benchmarks) flush first. *)

val stats : t -> stats
(** A point-in-time view over the [observer.*] telemetry instruments. *)

val proc_handle : t -> int -> Dpapi.handle
(** The virtual object representing process [pid] (created on demand). *)

val fork : t -> parent:int -> child:int -> (unit, Dpapi.error) result

val execve :
  t ->
  pid:int ->
  path:string ->
  argv:string list ->
  env:string list ->
  binary:Dpapi.handle ->
  (unit, Dpapi.error) result

val exit : t -> pid:int -> (unit, Dpapi.error) result

val read :
  t ->
  pid:int ->
  file:Dpapi.handle ->
  off:int ->
  len:int ->
  (Dpapi.read_result, Dpapi.error) result
(** Performs the provenance-aware read and records that the process depends
    on the exact version read. *)

val write :
  t ->
  pid:int ->
  file:Dpapi.handle ->
  off:int ->
  data:string ->
  (int, Dpapi.error) result
(** Sends the data together with the record stating that the process is an
    input of the file; returns the version the write landed in. *)

val mmap :
  t -> pid:int -> file:Dpapi.handle -> writable:bool -> (unit, Dpapi.error) result

val pipe_create : t -> pid:int -> pipe_id:int -> (unit, Dpapi.error) result
val pipe_write : t -> pid:int -> pipe_id:int -> (unit, Dpapi.error) result
val pipe_read : t -> pid:int -> pipe_id:int -> (unit, Dpapi.error) result
val drop_inode : t -> file:Dpapi.handle -> (unit, Dpapi.error) result

val endpoint_for : t -> pid:int -> Dpapi.endpoint
(** The DPAPI face handed to a provenance-aware application running as
    process [pid].  Disclosed writes are augmented with the implicit
    application-to-file dependency record. *)
