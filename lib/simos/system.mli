(** System assembly: a complete simulated machine.

    Builds the two configurations of the paper's evaluation (Section 7):
    [Vanilla] (ext3 volumes only — the baseline) and [Pass] (each volume
    Lasagna-stacked with a Waldo attached, and the kernel carrying the
    observer → analyzer → distributor → volume-router DPAPI chain). *)

module Dpapi = Pass_core.Dpapi
module Clock = Simdisk.Clock
module Disk = Simdisk.Disk

type mode = Vanilla | Pass

type volume = {
  v_name : string;
  v_disk : Disk.t;
  v_ext3 : Ext3.t;
  v_lasagna : Lasagna.t option;
  v_waldo : Waldo.t option;
}

type t

val create :
  ?registry:Telemetry.registry ->
  ?fault:Fault.plan ->
  ?tracer:Pvtrace.t ->
  ?monitor:Pvmon.t ->
  ?batching:bool ->
  mode:mode ->
  machine:int ->
  volume_names:string list ->
  unit ->
  t
(** [registry] (default {!Telemetry.default}) receives the instruments of
    every layer of this machine — [disk.*], [wap.*], [waldo.*],
    [distributor.*], [analyzer.*], [observer.*] — plus the DPAPI hot-path
    span histograms [dpapi.pass_write_ns] / [dpapi.pass_freeze_ns]
    (simulated nanoseconds, [Pass] mode only).  [fault] (default
    {!Fault.none}) is shared by every volume's disk.  [tracer] (default
    {!Pvtrace.disabled}) is wired to this machine's clock and threaded
    through every layer: system calls become root spans, each DPAPI hop
    ([analyzer.*], [distributor.*], [lasagna.*]) a child span, with layer
    decision events (deduped, cycle-broken, cached, flushed, ...) hanging
    off them.  [monitor] (default {!Pvmon.disabled}) is wired to the
    machine clock's advance hook, watches [registry], and installs
    itself as [tracer]'s completion sink — scrapes charge no simulated
    time, so an enabled monitor cannot perturb a run. *)

val mode : t -> mode

val telemetry : t -> Telemetry.registry
(** The registry this machine's layers report into. *)

val tracer : t -> Pvtrace.t
(** The tracer this machine's layers record into ({!Pvtrace.disabled}
    unless one was supplied at {!create}). *)

val clock : t -> Clock.t
val kernel : t -> Kernel.t
val volumes : t -> volume list
val find_volume : t -> string -> volume option

val elapsed_seconds : t -> float
(** The machine's simulated wall clock, in seconds. *)

val mount_external :
  t ->
  name:string ->
  ops:Vfs.ops ->
  ?endpoint:Dpapi.endpoint ->
  ?file_handle:(Vfs.ino -> (Dpapi.handle, Vfs.errno) result) ->
  ?flush:(unit -> (unit, Vfs.errno) result) ->
  unit ->
  unit
(** Mount an externally built file system (e.g. the PA-NFS client); with
    an [endpoint] it also joins the provenance routing table, and with
    [flush] its write-behind buffers are pushed on every close
    (close-to-open consistency). *)

val drain : t -> int
(** Close and process every volume's WAP logs; returns orphaned
    transactions discarded. *)

val waldo_db : t -> string -> Provdb.t option
(** The Waldo database of a volume (after {!drain} for a complete view). *)

val app_endpoint : t -> pid:int -> Dpapi.endpoint option
(** The per-process DPAPI endpoint a provenance-aware application uses
    (None on a vanilla kernel). *)

type space = {
  sp_data_bytes : int;
  sp_prov_log_bytes : int;
  sp_db_bytes : int;
  sp_index_bytes : int;
}

val space : t -> space
(** Space accounting for Table 3. *)
