(** The simulated OS kernel.

    Hosts a process table, per-process file descriptors, pipes, a mount
    table, and the system-call layer.  When provenance-aware, every
    relevant system call is intercepted and reported to the observer —
    the call set of paper Section 5.3: execve, fork, exit, read, write,
    mmap, open, pipe, and drop_inode.  Each volume is mounted at
    [/<name>]; the first component of an absolute path selects it. *)

module Dpapi = Pass_core.Dpapi
module Ctx = Pass_core.Ctx
module Observer = Pass_core.Observer
module Analyzer = Pass_core.Analyzer
module Distributor = Pass_core.Distributor
module Clock = Simdisk.Clock

type t

type pass_stack = {
  observer : Observer.t;
  analyzer : Analyzer.t;
  distributor : Distributor.t;
}

type errno = Vfs.errno

val create : ?tracer:Pvtrace.t -> clock:Clock.t -> machine:int -> unit -> t

val clock : t -> Clock.t
val ctx : t -> Ctx.t

val cpu : t -> int -> unit
(** Charge simulated CPU nanoseconds (workloads use this for computation). *)

val syscall_count : t -> int
val pass_stack : t -> pass_stack option

val mount :
  t ->
  name:string ->
  ops:Vfs.ops ->
  ?endpoint:Dpapi.endpoint ->
  ?file_handle:(Vfs.ino -> (Dpapi.handle, Vfs.errno) result) ->
  ?flush:(unit -> (unit, Vfs.errno) result) ->
  unit ->
  unit
(** Mount a file system at [/name].  Provenance-aware volumes also supply
    their DPAPI endpoint and a file-handle resolver.  [flush] is the
    close-to-open hook of a remote file system: it is called when a file
    on this mount is closed, so write-behind buffers reach the server
    before any other client can open the file. *)

val set_pass : t -> pass_stack -> unit
(** Install the observer/analyzer/distributor chain (turns interception on). *)

val init_pid : int
(** The init process (pid 1). *)

(** {1 System calls} *)

val fork : t -> parent:int -> int
(** Returns the new child pid. *)

val execve :
  t -> pid:int -> path:string -> argv:string list -> env:string list ->
  (unit, errno) result

val exit : t -> pid:int -> (unit, errno) result

val open_file : t -> pid:int -> path:string -> create:bool -> (int, errno) result
(** Returns a file descriptor; [create] makes missing files (and parents). *)

val read : t -> pid:int -> fd:int -> len:int -> (string, errno) result
(** Reads at the descriptor's offset, advancing it; through the DPAPI when
    the volume is provenance-aware. *)

val write : t -> pid:int -> fd:int -> data:string -> (unit, errno) result
val seek : t -> pid:int -> fd:int -> off:int -> (unit, errno) result
val close : t -> pid:int -> fd:int -> (unit, errno) result
val mmap : t -> pid:int -> fd:int -> writable:bool -> (unit, errno) result

val pipe : t -> pid:int -> int
(** Returns a pipe id usable with {!pipe_read} / {!pipe_write}. *)

val pipe_write : t -> pid:int -> pipe_id:int -> data:string -> (unit, errno) result
val pipe_read : t -> pid:int -> pipe_id:int -> (string, errno) result

val mkdir_p : t -> path:string -> (unit, errno) result
val unlink : t -> pid:int -> path:string -> (unit, errno) result
val rename : t -> pid:int -> src:string -> dst:string -> (unit, errno) result
val stat : t -> path:string -> (Vfs.stat, errno) result
val readdir : t -> path:string -> (string list, errno) result

val handle_of_path : t -> string -> (Dpapi.handle, errno) result
(** The DPAPI handle of a file, for applications disclosing provenance
    about it.  Fails with EINVAL on volumes that are not provenance-aware. *)
