(* System assembly: builds a complete simulated machine in one of two
   configurations, mirroring the paper's evaluation setup (§7):

   - Vanilla: ext3 volumes only (the baseline columns of Tables 2 & 3);
   - Pass: each volume is Lasagna stacked over ext3, with a Waldo attached,
     and the kernel carries the full observer -> analyzer -> distributor ->
     volume-router DPAPI chain.

   The router is the distributor's lower endpoint: it dispatches each DPAPI
   call to the Lasagna instance (or PA-NFS client) of the handle's volume. *)

module Dpapi = Pass_core.Dpapi
module Ctx = Pass_core.Ctx
module Observer = Pass_core.Observer
module Analyzer = Pass_core.Analyzer
module Distributor = Pass_core.Distributor
module Clock = Simdisk.Clock
module Disk = Simdisk.Disk

type mode = Vanilla | Pass

type volume = {
  v_name : string;
  v_disk : Disk.t;
  v_ext3 : Ext3.t;
  v_lasagna : Lasagna.t option;
  v_waldo : Waldo.t option;
}

type t = {
  mode : mode;
  clock : Clock.t;
  kernel : Kernel.t;
  registry : Telemetry.registry;
  tracer : Pvtrace.t;
  mutable volumes : volume list;
  mutable router_table : (string * Dpapi.endpoint) list;
}

let mode t = t.mode
let clock t = t.clock
let telemetry t = t.registry
let tracer t = t.tracer
let kernel t = t.kernel
let volumes t = t.volumes
let elapsed_seconds t = Clock.seconds t.clock

let find_volume t name = List.find_opt (fun v -> String.equal v.v_name name) t.volumes

let router t : Dpapi.endpoint =
  let lookup (h : Dpapi.handle) =
    match h.volume with
    | None -> Error Dpapi.Einval
    | Some name -> (
        match List.assoc_opt name t.router_table with
        | Some ep -> Ok ep
        | None -> Error Dpapi.Enoent)
  in
  let ( let* ) = Result.bind in
  {
    pass_read =
      (fun h ~off ~len ->
        let* ep = lookup h in
        ep.pass_read h ~off ~len);
    pass_write =
      (fun h ~off ~data b ->
        let* ep = lookup h in
        ep.pass_write h ~off ~data b);
    pass_freeze =
      (fun h ->
        let* ep = lookup h in
        ep.pass_freeze h);
    pass_mkobj =
      (fun ~volume ->
        match volume with
        | None -> Error Dpapi.Einval
        | Some name -> (
            match List.assoc_opt name t.router_table with
            | Some ep -> ep.pass_mkobj ~volume
            | None -> Error Dpapi.Enoent));
    pass_reviveobj =
      (fun p v ->
        (* try every volume: pnodes are globally unique *)
        let rec try_all = function
          | [] -> Error Dpapi.Enoent
          | (_, ep) :: rest -> (
              match ep.Dpapi.pass_reviveobj p v with
              | Ok h -> Ok h
              | Error _ -> try_all rest)
        in
        try_all t.router_table);
    pass_sync =
      (fun h ->
        let* ep = lookup h in
        ep.pass_sync h);
  }

let create ?(registry = Telemetry.default) ?fault ?(tracer = Pvtrace.disabled)
    ?(monitor = Pvmon.disabled) ?(batching = true) ~mode ~machine ~volume_names
    () =
  let clock = Clock.create () in
  Pvtrace.set_now tracer (fun () -> Clock.now clock);
  (* pvmon wiring: the scrape loop rides the clock's advance hook (so the
     scrape timeline is a function of simulated time only), the machine
     registry joins the scrape set, and the monitor becomes the tracer's
     completion sink for the attribution fold.  Nothing is installed for
     the disabled singleton — zero cost, like the tracer. *)
  if Pvmon.enabled monitor then begin
    Pvmon.watch monitor registry;
    Pvmon.attach_tracer monitor tracer;
    Clock.on_advance clock (fun now -> Pvmon.tick monitor now)
  end;
  let kernel = Kernel.create ~tracer ~clock ~machine () in
  let t = { mode; clock; kernel; registry; tracer; volumes = []; router_table = [] } in
  let charge = Clock.advance clock in
  let make_volume name =
    let disk = Disk.create ~registry ?fault ~clock () in
    let ext3 = Ext3.format disk in
    match mode with
    | Vanilla ->
        Kernel.mount kernel ~name ~ops:(Ext3.ops ext3) ();
        { v_name = name; v_disk = disk; v_ext3 = ext3; v_lasagna = None; v_waldo = None }
    | Pass ->
        (* stacking halves the effective page cache: Lasagna caches its
           own pages and the lower file system's pages (paper §7) *)
        Ext3.set_cache_capacity ext3 2048;
        let ctx = Kernel.ctx kernel in
        let lasagna =
          Lasagna.create ~registry ~now:(fun () -> Clock.now clock) ~tracer
            ~group_commit:batching ~lower:(Ext3.ops ext3) ~ctx ~volume:name ~charge ()
        in
        let waldo = Waldo.create ~registry ~tracer ~lower:(Ext3.ops ext3) () in
        Waldo.attach waldo lasagna;
        let storage_ep =
          Dpapi.traced ~tracer ~layer:"lasagna" (Lasagna.endpoint lasagna)
        in
        t.router_table <- (name, storage_ep) :: t.router_table;
        Kernel.mount kernel ~name ~ops:(Lasagna.ops lasagna)
          ~endpoint:storage_ep
          ~file_handle:(Lasagna.file_handle lasagna) ();
        { v_name = name; v_disk = disk; v_ext3 = ext3;
          v_lasagna = Some lasagna; v_waldo = Some waldo }
  in
  t.volumes <- List.map make_volume volume_names;
  (match (mode, t.volumes) with
  | Pass, { v_name = default_volume; _ } :: _ ->
      let ctx = Kernel.ctx kernel in
      let distributor =
        Distributor.create ~registry ~tracer ~ctx ~lower:(router t) ~default_volume ()
      in
      let analyzer =
        Analyzer.create ~registry ~charge ~tracer ~ctx
          ~lower:
            (Dpapi.traced ~tracer ~layer:"distributor"
               (Distributor.endpoint distributor))
          ()
      in
      (* span timing around the DPAPI hot path: pass_write / pass_freeze
         as seen at the top of the in-kernel chain, in simulated ns *)
      let write_ns = Telemetry.histogram ~registry "dpapi.pass_write_ns" in
      let freeze_ns = Telemetry.histogram ~registry "dpapi.pass_freeze_ns" in
      let now () = Clock.now clock in
      let inner = Analyzer.endpoint analyzer in
      let timed =
        {
          inner with
          Dpapi.pass_write =
            (fun h ~off ~data b ->
              Telemetry.with_span write_ns ~now (fun () -> inner.pass_write h ~off ~data b));
          pass_freeze =
            (fun h -> Telemetry.with_span freeze_ns ~now (fun () -> inner.pass_freeze h));
        }
      in
      let observer =
        Observer.create ~registry ~tracer ~batch:batching ~ctx
          ~lower:(Dpapi.traced ~tracer ~layer:"analyzer" timed) ()
      in
      Kernel.set_pass kernel { Kernel.observer; analyzer; distributor }
  | Pass, [] | Vanilla, _ -> ());
  t

(* Mount an externally built file system (e.g. the PA-NFS client) on this
   machine. *)
let mount_external t ~name ~ops ?endpoint ?file_handle ?flush () =
  (match endpoint with
  | Some ep -> t.router_table <- (name, ep) :: t.router_table
  | None -> ());
  Kernel.mount t.kernel ~name ~ops ?endpoint ?file_handle ?flush ()

(* Drain all WAP logs into the Waldo databases; returns total orphaned
   transactions discarded. *)
let drain t =
  (match Kernel.pass_stack t.kernel with
  | Some s -> (
      (* release any observer burst still queued before the logs close *)
      match Observer.flush s.Kernel.observer with Ok () -> () | Error _ -> ())
  | None -> ());
  List.fold_left
    (fun acc v ->
      match (v.v_lasagna, v.v_waldo) with
      | Some l, Some w -> acc + Waldo.finalize w l
      | _ -> acc)
    0 t.volumes

let waldo_db t name =
  Option.bind (find_volume t name) (fun v -> Option.map Waldo.db v.v_waldo)

(* The per-process DPAPI endpoint a provenance-aware application uses. *)
let app_endpoint t ~pid =
  match Kernel.pass_stack t.kernel with
  | Some s -> Some (Observer.endpoint_for s.Kernel.observer ~pid)
  | None -> None

(* --- space accounting for Table 3 ---------------------------------------- *)

type space = {
  sp_data_bytes : int; (* workload data written to the baseline FS *)
  sp_prov_log_bytes : int; (* WAP log bytes written *)
  sp_db_bytes : int; (* Waldo database *)
  sp_index_bytes : int; (* Waldo indexes *)
}

let space t =
  List.fold_left
    (fun acc v ->
      let log_bytes, db_bytes, idx_bytes =
        match (v.v_lasagna, v.v_waldo) with
        | Some l, Some w ->
            ((Lasagna.stats l).prov_bytes_logged,
             Provdb.db_bytes (Waldo.db w),
             Provdb.index_bytes (Waldo.db w))
        | _ -> (0, 0, 0)
      in
      {
        sp_data_bytes = acc.sp_data_bytes + Ext3.live_bytes v.v_ext3;
        sp_prov_log_bytes = acc.sp_prov_log_bytes + log_bytes;
        sp_db_bytes = acc.sp_db_bytes + db_bytes;
        sp_index_bytes = acc.sp_index_bytes + idx_bytes;
      })
    { sp_data_bytes = 0; sp_prov_log_bytes = 0; sp_db_bytes = 0; sp_index_bytes = 0 }
    t.volumes
