(* The simulated OS kernel.

   Hosts a process table, per-process file descriptors, pipes, a mount
   table, and the system-call layer.  When the kernel is provenance-aware
   (PASS mode), every relevant system call is intercepted and reported to
   the observer, exactly the call set of paper §5.3: execve, fork, exit,
   read, write, mmap, open, pipe, and the drop_inode kernel operation.
   Data-path calls are then *performed by* the observer through the DPAPI
   stack (observer -> analyzer -> distributor -> volume router -> Lasagna),
   so provenance and data flow together.  In vanilla mode the same system
   calls go straight to the mounted file system.

   Mounts: each volume is mounted at /<name>; the first component of an
   absolute path selects the volume. *)

module Dpapi = Pass_core.Dpapi
module Ctx = Pass_core.Ctx
module Observer = Pass_core.Observer
module Analyzer = Pass_core.Analyzer
module Distributor = Pass_core.Distributor
module Clock = Simdisk.Clock

type mount = {
  m_name : string;
  m_ops : Vfs.ops; (* the file system processes see *)
  m_endpoint : Dpapi.endpoint option; (* DPAPI face when provenance-aware *)
  m_file_handle : (Vfs.ino -> (Dpapi.handle, Vfs.errno) result) option;
  m_flush : (unit -> (unit, Vfs.errno) result) option;
      (* close-to-open hook: a remote file system (PA-NFS) flushes its
         write-behind buffers when a file on this mount is closed *)
}

type pass_stack = {
  observer : Observer.t;
  analyzer : Analyzer.t;
  distributor : Distributor.t;
}

type fd_entry = {
  fd_mount : mount;
  fd_ino : Vfs.ino;
  mutable fd_off : int;
  fd_path : string;
}

type process = {
  pid : int;
  fds : (int, fd_entry) Hashtbl.t;
  mutable next_fd : int;
  mutable alive : bool;
}

type pipe = {
  pipe_id : int;
  mutable buffer : string list; (* chunks, oldest last *)
}

type errno = Vfs.errno

type t = {
  clock : Clock.t;
  ctx : Ctx.t;
  mounts : (string, mount) Hashtbl.t;
  procs : (int, process) Hashtbl.t;
  pipes : (int, pipe) Hashtbl.t;
  mutable next_pid : int;
  mutable next_pipe : int;
  mutable pass : pass_stack option;
  mutable syscall_count : int;
  tracer : Pvtrace.t;
}

(* CPU cost knobs (simulated ns). *)
let syscall_base_ns = 400
let intercept_ns = 250

let create ?(tracer = Pvtrace.disabled) ~clock ~machine () =
  {
    clock;
    ctx = Ctx.create ~machine;
    mounts = Hashtbl.create 8;
    procs = Hashtbl.create 64;
    pipes = Hashtbl.create 16;
    next_pid = 2;
    next_pipe = 1;
    pass = None;
    syscall_count = 0;
    tracer;
  }

(* Every system call runs inside a root span: the trace minted here is the
   causal context every downstream DPAPI span (and, over the wire, every
   PA-NFS server span) parents into. *)
let sys t op f = Pvtrace.span t.tracer ~layer:"simos" ~op f

let clock t = t.clock
let ctx t = t.ctx
let charge t ns = Clock.advance t.clock ns
let cpu = charge
let syscall_count t = t.syscall_count
let pass_stack t = t.pass

let mount t ~name ~ops ?endpoint ?file_handle ?flush () =
  Hashtbl.replace t.mounts name
    { m_name = name; m_ops = ops; m_endpoint = endpoint; m_file_handle = file_handle;
      m_flush = flush }

let set_pass t stack = t.pass <- Some stack

(* the init process *)
let init_pid = 1

let proc t pid =
  match Hashtbl.find_opt t.procs pid with
  | Some p -> p
  | None ->
      let p = { pid; fds = Hashtbl.create 8; next_fd = 3; alive = true } in
      Hashtbl.add t.procs pid p;
      p

let ( let* ) = Result.bind

let enter t =
  t.syscall_count <- t.syscall_count + 1;
  charge t syscall_base_ns;
  if t.pass <> None then charge t intercept_ns

let lift_dpapi : ('a, Dpapi.error) result -> ('a, errno) result = function
  | Ok v -> Ok v
  | Error e ->
      Error
        (match e with
        | Dpapi.Enoent -> Vfs.ENOENT
        | Dpapi.Eexist -> Vfs.EEXIST
        | Dpapi.Einval -> Vfs.EINVAL
        | Dpapi.Estale -> Vfs.ESTALE
        | Dpapi.Enospc -> Vfs.ENOSPC
        | Dpapi.Ecrashed -> Vfs.ECRASH
        | Dpapi.Ebadf -> Vfs.EBADF
        | Dpapi.Eagain -> Vfs.EAGAIN
        | Dpapi.Eio | Dpapi.Emsg _ -> Vfs.EIO)

(* --- path resolution ----------------------------------------------------- *)

let resolve_mount t path =
  match Vfs.split_path path with
  | [] -> Error Vfs.EINVAL
  | vol :: rest -> (
      match Hashtbl.find_opt t.mounts vol with
      | Some m -> Ok (m, "/" ^ String.concat "/" rest)
      | None -> Error Vfs.ENOENT)

let file_handle_of m ino =
  match (m.m_file_handle, m.m_endpoint) with
  | Some fh, Some _ -> (
      match fh ino with Ok h -> Some h | Error _ -> None)
  | _ -> None

(* --- process lifecycle --------------------------------------------------- *)

let fork t ~parent =
  sys t "syscall.fork" @@ fun () ->
  enter t;
  let child = t.next_pid in
  t.next_pid <- child + 1;
  let _ : process = proc t parent in
  let _ : process = proc t child in
  (match t.pass with
  | Some s ->
      let _ : (unit, Dpapi.error) result =
        Observer.fork s.observer ~parent ~child
      in
      ()
  | None -> ());
  child

let execve t ~pid ~path ~argv ~env =
  sys t "syscall.execve" @@ fun () ->
  enter t;
  let* m, rel = resolve_mount t path in
  let* ino = Vfs.lookup_path m.m_ops rel in
  match t.pass with
  | Some s -> (
      match file_handle_of m ino with
      | Some binary ->
          lift_dpapi (Observer.execve s.observer ~pid ~path ~argv ~env ~binary)
      | None -> Ok ())
  | None -> Ok ()

let exit t ~pid =
  sys t "syscall.exit" @@ fun () ->
  enter t;
  let p = proc t pid in
  p.alive <- false;
  Hashtbl.reset p.fds;
  (match t.pass with
  | Some s ->
      let _ : (unit, Dpapi.error) result = Observer.exit s.observer ~pid in
      ()
  | None -> ());
  Ok ()

(* --- file I/O ------------------------------------------------------------ *)

let open_file t ~pid ~path ~create =
  sys t "syscall.open" @@ fun () ->
  enter t;
  let* m, rel = resolve_mount t path in
  let* ino =
    match Vfs.lookup_path m.m_ops rel with
    | Ok ino -> Ok ino
    | Error Vfs.ENOENT when create -> Vfs.create_path ~mkparents:true m.m_ops rel Vfs.Regular
    | Error _ as e -> e
  in
  let p = proc t pid in
  let fd = p.next_fd in
  p.next_fd <- fd + 1;
  Hashtbl.replace p.fds fd { fd_mount = m; fd_ino = ino; fd_off = 0; fd_path = rel };
  Ok fd

let fd_entry t ~pid ~fd =
  match Hashtbl.find_opt (proc t pid).fds fd with
  | Some e -> Ok e
  | None -> Error Vfs.EBADF

let read t ~pid ~fd ~len =
  sys t "syscall.read" @@ fun () ->
  enter t;
  let* e = fd_entry t ~pid ~fd in
  let* data =
    match (t.pass, file_handle_of e.fd_mount e.fd_ino) with
    | Some s, Some h ->
        let* r = lift_dpapi (Observer.read s.observer ~pid ~file:h ~off:e.fd_off ~len) in
        Ok r.Dpapi.data
    | _ -> e.fd_mount.m_ops.read e.fd_ino ~off:e.fd_off ~len
  in
  e.fd_off <- e.fd_off + String.length data;
  Ok data

let write t ~pid ~fd ~data =
  sys t "syscall.write" @@ fun () ->
  enter t;
  let* e = fd_entry t ~pid ~fd in
  let* () =
    match (t.pass, file_handle_of e.fd_mount e.fd_ino) with
    | Some s, Some h ->
        let* _v = lift_dpapi (Observer.write s.observer ~pid ~file:h ~off:e.fd_off ~data) in
        Ok ()
    | _ -> e.fd_mount.m_ops.write e.fd_ino ~off:e.fd_off data
  in
  e.fd_off <- e.fd_off + String.length data;
  Ok ()

let seek t ~pid ~fd ~off =
  let* e = fd_entry t ~pid ~fd in
  e.fd_off <- off;
  Ok ()

let close t ~pid ~fd =
  sys t "syscall.close" @@ fun () ->
  enter t;
  let p = proc t pid in
  match Hashtbl.find_opt p.fds fd with
  | Some e ->
      Hashtbl.remove p.fds fd;
      (* close-to-open consistency: a remote mount pushes its write-behind
         buffers (data and piggybacked provenance) to the server on close *)
      (match e.fd_mount.m_flush with Some f -> f () | None -> Ok ())
  | None -> Error Vfs.EBADF

let mmap t ~pid ~fd ~writable =
  sys t "syscall.mmap" @@ fun () ->
  enter t;
  let* e = fd_entry t ~pid ~fd in
  match (t.pass, file_handle_of e.fd_mount e.fd_ino) with
  | Some s, Some h -> lift_dpapi (Observer.mmap s.observer ~pid ~file:h ~writable)
  | _ -> Ok ()

(* --- pipes ---------------------------------------------------------------- *)

let pipe t ~pid =
  sys t "syscall.pipe" @@ fun () ->
  enter t;
  let id = t.next_pipe in
  t.next_pipe <- id + 1;
  Hashtbl.replace t.pipes id { pipe_id = id; buffer = [] };
  (match t.pass with
  | Some s ->
      let _ : (unit, Dpapi.error) result =
        Observer.pipe_create s.observer ~pid ~pipe_id:id
      in
      ()
  | None -> ());
  id

let pipe_write t ~pid ~pipe_id ~data =
  sys t "syscall.pipe_write" @@ fun () ->
  enter t;
  match Hashtbl.find_opt t.pipes pipe_id with
  | None -> Error Vfs.EBADF
  | Some p ->
      p.buffer <- data :: p.buffer;
      (match t.pass with
      | Some s -> lift_dpapi (Observer.pipe_write s.observer ~pid ~pipe_id)
      | None -> Ok ())

let pipe_read t ~pid ~pipe_id =
  sys t "syscall.pipe_read" @@ fun () ->
  enter t;
  match Hashtbl.find_opt t.pipes pipe_id with
  | None -> Error Vfs.EBADF
  | Some p ->
      let data = String.concat "" (List.rev p.buffer) in
      p.buffer <- [];
      let* () =
        match t.pass with
        | Some s -> lift_dpapi (Observer.pipe_read s.observer ~pid ~pipe_id)
        | None -> Ok ()
      in
      Ok data

(* --- namespace operations ------------------------------------------------ *)

let mkdir_p t ~path =
  sys t "syscall.mkdir" @@ fun () ->
  enter t;
  let* m, rel = resolve_mount t path in
  let* _ino = Vfs.mkdir_p m.m_ops rel in
  Ok ()

let unlink t ~pid:_ ~path =
  sys t "syscall.unlink" @@ fun () ->
  enter t;
  let* m, rel = resolve_mount t path in
  (match (t.pass, Vfs.lookup_path m.m_ops rel) with
  | Some s, Ok ino -> (
      match file_handle_of m ino with
      | Some h ->
          let _ : (unit, Dpapi.error) result =
            Observer.drop_inode s.observer ~file:h
          in
          ()
      | None -> ())
  | _ -> ());
  Vfs.remove_path m.m_ops rel

let rename t ~pid:_ ~src ~dst =
  sys t "syscall.rename" @@ fun () ->
  enter t;
  let* ms, rels = resolve_mount t src in
  let* md, reld = resolve_mount t dst in
  if not (String.equal ms.m_name md.m_name) then Error Vfs.EINVAL
  else Vfs.rename_path ms.m_ops rels reld

let stat t ~path =
  sys t "syscall.stat" @@ fun () ->
  enter t;
  let* m, rel = resolve_mount t path in
  let* ino = Vfs.lookup_path m.m_ops rel in
  m.m_ops.getattr ino

let readdir t ~path =
  sys t "syscall.readdir" @@ fun () ->
  enter t;
  let* m, rel = resolve_mount t path in
  let* ino = Vfs.lookup_path m.m_ops rel in
  m.m_ops.readdir ino

(* handle of a file by path, for examples and tests that disclose
   provenance about files *)
let handle_of_path t path =
  let* m, rel = resolve_mount t path in
  let* ino = Vfs.lookup_path m.m_ops rel in
  match file_handle_of m ino with
  | Some h -> Ok h
  | None -> Error Vfs.EINVAL
