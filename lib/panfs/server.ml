(* The NFS server.

   In plain mode it exports an ext3sim volume.  In PA mode the exported
   volume is Lasagna-stacked and the server runs its own analyzer above
   Lasagna — the paper's §6.1.1 argument: with two clients sharing one
   server, only the server sees all related provenance records, so there
   must be an analyzer on the server as well (and one on every client);
   both speak DPAPI, which is exactly what makes the stacking work.

   Transactions: OP_BEGINTXN allocates an id and logs a BEGINTXN record;
   OP_PASSPROV chunks and the terminating OP_PASSWRITE are logged tagged
   with the id; Waldo only ingests a transaction once its ENDTXN record
   arrives, so a client crash mid-transaction leaves an orphan that Waldo
   discards (recovery story of §6.1.2). *)

module Dpapi = Pass_core.Dpapi
module Ctx = Pass_core.Ctx
module Record = Pass_core.Record
module Pvalue = Pass_core.Pvalue
module Analyzer = Pass_core.Analyzer
module Clock = Simdisk.Clock
module Disk = Simdisk.Disk

type mode = Plain | Pass_enabled

(* Server-side instruments (the embedded analyzer / Lasagna / Waldo / disk
   register their own when a registry is threaded through [create]). *)
type instruments = {
  requests : Telemetry.counter;
  txns_opened : Telemetry.counter;
  drc_hits : Telemetry.counter;
  drc_misses : Telemetry.counter;
  drc_size : Telemetry.gauge; (* nfs.drc.size: cached replies right now *)
}

let instruments registry =
  {
    requests = Telemetry.counter ?registry "panfs.server.requests";
    txns_opened = Telemetry.counter ?registry "panfs.server.txns_opened";
    drc_hits = Telemetry.counter ?registry "nfs.drc.hits";
    drc_misses = Telemetry.counter ?registry "nfs.drc.misses";
    drc_size = Telemetry.gauge ?registry "nfs.drc.size";
  }

type t = {
  mode : mode;
  clock : Clock.t;
  disk : Disk.t;
  ext3 : Ext3.t;
  export : Vfs.ops; (* what clients see *)
  lasagna : Lasagna.t option;
  analyzer : Analyzer.t option;
  waldo : Waldo.t option;
  ctx : Ctx.t;
  volume : string;
  tracer : Pvtrace.t;
  i : instruments;
  mutable next_txn : int;
  mutable open_txns : int list;
  (* NFSv4-style duplicate-request cache: a retransmission (same client
     id + sequence number) replays the cached reply instead of
     re-executing the operation, which is what keeps non-idempotent ops
     (Create, Remove, Op_passwrite) exactly-once under retry *)
  drc : (int * int, Proto.resp) Hashtbl.t;
  drc_order : (int * int) Queue.t;
  drc_capacity : int;
}

let create ?registry ?fault ?(tracer = Pvtrace.disabled) ~mode ~clock ~machine ~volume () =
  Pvtrace.set_now tracer (fun () -> Clock.now clock);
  let i = instruments registry in
  let disk = Disk.create ?registry ?fault ~clock () in
  let ext3 = Ext3.format disk in
  let ctx = Ctx.create ~machine in
  match mode with
  | Plain ->
      {
        mode; clock; disk; ext3; export = Ext3.ops ext3; lasagna = None;
        analyzer = None; waldo = None; ctx; volume; tracer; i; next_txn = 1; open_txns = [];
        drc = Hashtbl.create 1024; drc_order = Queue.create (); drc_capacity = 512;
      }
  | Pass_enabled ->
      Ext3.set_cache_capacity ext3 2048;
      let lasagna =
        Lasagna.create ?registry ~now:(fun () -> Clock.now clock) ~tracer
          ~lower:(Ext3.ops ext3) ~ctx ~volume ~charge:(Clock.advance clock) ()
      in
      let analyzer =
        Analyzer.create ?registry ~charge:(Clock.advance clock) ~tracer ~ctx
          ~lower:(Dpapi.traced ~tracer ~layer:"lasagna" (Lasagna.endpoint lasagna)) ()
      in
      let waldo = Waldo.create ?registry ~tracer ~lower:(Ext3.ops ext3) () in
      Waldo.attach waldo lasagna;
      {
        mode; clock; disk; ext3; export = Lasagna.ops lasagna; lasagna = Some lasagna;
        analyzer = Some analyzer; waldo = Some waldo; ctx; volume; tracer; i; next_txn = 1;
        open_txns = [];
        drc = Hashtbl.create 1024; drc_order = Queue.create (); drc_capacity = 512;
      }

let ctx t = t.ctx
let waldo t = t.waldo
let lasagna t = t.lasagna
let disk t = t.disk
let ext3 t = t.ext3

let db t = Option.map Waldo.db t.waldo

let drain t =
  match (t.waldo, t.lasagna) with
  | Some w, Some l -> Waldo.finalize w l
  | _ -> 0

let err e = Proto.R_err e

let dpapi_err (e : Dpapi.error) =
  err
    (match e with
    | Dpapi.Enoent -> Vfs.ENOENT
    | Dpapi.Eexist -> Vfs.EEXIST
    | Dpapi.Einval -> Vfs.EINVAL
    | Dpapi.Estale -> Vfs.ESTALE
    | Dpapi.Enospc -> Vfs.ENOSPC
    | Dpapi.Ecrashed -> Vfs.ECRASH
    | Dpapi.Ebadf -> Vfs.EBADF
    | Dpapi.Eagain -> Vfs.EAGAIN
    | Dpapi.Eio | Dpapi.Emsg _ -> Vfs.EIO)

(* Client-side freezes arrive as FREEZE records (§6.1.2: freeze is a
   record type, not an operation, so it stays ordered with respect to the
   writes it protects).  Fold them into the server's version view before
   the analyzer sees the bundle. *)
let apply_client_freezes t bundle =
  List.iter
    (fun (e : Dpapi.bundle_entry) ->
      List.iter
        (fun (r : Record.t) ->
          match r.value with
          | Pvalue.Int v when String.equal r.attr Record.Attr.freeze ->
              Ctx.adopt t.ctx e.target.pnode ~version:v
          | _ -> ())
        e.records)
    bundle

(* Retarget handles to this server's volume (clients name the volume by
   their mount point). *)
let localize t (h : Dpapi.handle) = { h with Dpapi.volume = Some t.volume }

let localize_bundle t bundle =
  List.map (fun (e : Dpapi.bundle_entry) -> { e with Dpapi.target = localize t e.target }) bundle

(* NFS metadata operations are synchronous: the server must make the
   change stable (journal flush) before replying.  Charged per namespace
   operation; this is why the paper's NFS baselines run so much longer
   than the local ones for metadata-heavy workloads. *)
let stable_metadata_ns = 2_800_000

let rec handle_req t (req : Proto.req) : Proto.resp =
  Telemetry.incr t.i.requests;
  (match req with
  | Proto.Create _ | Proto.Remove _ | Proto.Rename _ | Proto.Truncate _ ->
      Clock.advance t.clock stable_metadata_ns
  | _ -> ());
  match req with
  | Proto.Lookup { dir; name } -> (
      match t.export.lookup ~dir name with Ok ino -> R_ino ino | Error e -> err e)
  | Proto.Create { dir; name; kind } -> (
      match t.export.create ~dir name kind with Ok ino -> R_ino ino | Error e -> err e)
  | Proto.Remove { dir; name } -> (
      match t.export.unlink ~dir name with Ok () -> R_ok | Error e -> err e)
  | Proto.Rename { src_dir; src_name; dst_dir; dst_name } -> (
      match t.export.rename ~src_dir ~src_name ~dst_dir ~dst_name with
      | Ok () -> R_ok
      | Error e -> err e)
  | Proto.Getattr { ino } -> (
      match t.export.getattr ino with Ok st -> R_attr st | Error e -> err e)
  | Proto.Readdir { ino } -> (
      match t.export.readdir ino with Ok names -> R_names names | Error e -> err e)
  | Proto.Read { ino; off; len } -> (
      match t.export.read ino ~off ~len with Ok d -> R_data d | Error e -> err e)
  | Proto.Write { ino; off; data } -> (
      match t.export.write ino ~off data with Ok () -> R_ok | Error e -> err e)
  | Proto.Truncate { ino; size } -> (
      match t.export.truncate ino size with Ok () -> R_ok | Error e -> err e)
  | Proto.Commit { ino } -> (
      match t.export.fsync ino with Ok () -> R_ok | Error e -> err e)
  | Proto.Op_passread { pnode; off; len } -> (
      match t.lasagna with
      | None -> err Vfs.EINVAL
      | Some l -> (
          let ep = Lasagna.endpoint l in
          match ep.pass_read (Dpapi.handle ~volume:t.volume pnode) ~off ~len with
          | Ok r -> R_passread { data = r.Dpapi.data; pnode = r.r_pnode; version = r.r_version }
          | Error e -> dpapi_err e))
  | Proto.Op_passwrite { pnode; off; data; bundle; txn } -> (
      match (t.lasagna, t.analyzer) with
      | Some l, Some an -> (
          let h = Dpapi.handle ~volume:t.volume pnode in
          let bundle = localize_bundle t bundle in
          apply_client_freezes t bundle;
          (match txn with
          | Some id ->
              t.open_txns <- List.filter (fun x -> x <> id) t.open_txns;
              (* transactional writes bypass the analyzer's elision so the
                 ENDTXN marker always reaches the log *)
              (match Lasagna.write_txn_bundle ~txn:id l h ~off ~data bundle with
              | Ok v -> R_version v
              | Error e -> dpapi_err e)
          | None -> (
              let ep =
                Dpapi.traced ~tracer:t.tracer ~layer:"analyzer"
                  (Analyzer.endpoint an)
              in
              match ep.pass_write h ~off ~data bundle with
              | Ok v -> R_version v
              | Error e -> dpapi_err e)))
      | _ -> err Vfs.EINVAL)
  | Proto.Op_begintxn -> (
      match t.lasagna with
      | None -> err Vfs.EINVAL
      | Some l -> (
          let id = t.next_txn in
          t.next_txn <- id + 1;
          t.open_txns <- id :: t.open_txns;
          Telemetry.incr t.i.txns_opened;
          (* log the BEGINTXN record at the server (§6.1.2) *)
          let marker_h = Dpapi.handle ~volume:t.volume (Ctx.fresh t.ctx) in
          let marker =
            [ Dpapi.entry marker_h [ Record.make Record.Attr.begintxn (Pvalue.Int id) ] ]
          in
          match Lasagna.write_txn_bundle ~txn:id l marker_h ~off:0 ~data:None marker with
          | Ok _ -> R_txn id
          | Error e -> dpapi_err e))
  | Proto.Op_passprov { txn; chunk } -> (
      match t.lasagna with
      | None -> err Vfs.EINVAL
      | Some l -> (
          let chunk = localize_bundle t chunk in
          apply_client_freezes t chunk;
          match
            Lasagna.write_txn_bundle ~txn l
              (Dpapi.handle ~volume:t.volume (Ctx.fresh t.ctx))
              ~off:0 ~data:None chunk
          with
          | Ok _ -> R_ok
          | Error e -> dpapi_err e))
  | Proto.Op_passmkobj -> (
      match t.lasagna with
      | None -> err Vfs.EINVAL
      | Some l -> (
          match (Lasagna.endpoint l).pass_mkobj ~volume:(Some t.volume) with
          | Ok h -> R_handle { pnode = h.Dpapi.pnode }
          | Error e -> dpapi_err e))
  | Proto.Op_passreviveobj { pnode; version } -> (
      match t.lasagna with
      | None -> err Vfs.EINVAL
      | Some l -> (
          match (Lasagna.endpoint l).pass_reviveobj pnode version with
          | Ok h -> R_handle { pnode = h.Dpapi.pnode }
          | Error e -> dpapi_err e))
  | Proto.Op_passsync { pnode } -> (
      match t.lasagna with
      | None -> err Vfs.EINVAL
      | Some l -> (
          match (Lasagna.endpoint l).pass_sync (Dpapi.handle ~volume:t.volume pnode) with
          | Ok () -> R_ok
          | Error e -> dpapi_err e))
  | Proto.Op_pnode { ino } -> (
      match t.lasagna with
      | None -> err Vfs.EINVAL
      | Some l -> (
          match Lasagna.file_handle l ino with
          | Ok h -> R_handle { pnode = h.Dpapi.pnode }
          | Error e -> err e))
  | Proto.Op_passbatch { writes } ->
      (* apply in order, stopping at the first error: each item is
         processed exactly like a non-transactional OP_PASSWRITE, and the
         whole batch shares the caller's DRC entry so a replayed envelope
         replays the cached replies instead of re-applying any item *)
      let rec go acc = function
        | [] -> Proto.R_batch (List.rev acc)
        | (it : Proto.batch_item) :: rest -> (
            match
              handle_req t
                (Proto.Op_passwrite
                   { pnode = it.bi_pnode; off = it.bi_off; data = it.bi_data;
                     bundle = it.bi_bundle; txn = None })
            with
            | Proto.R_err _ as e -> Proto.R_batch (List.rev (e :: acc))
            | resp -> go (resp :: acc) rest)
      in
      go [] writes

let handle t (c : Proto.call) : Proto.resp =
  (* Adopt the wire-carried context: every span below — including the
     whole server-side analyzer/Lasagna chain — parents onto the client
     RPC span that caused it, across retries and duplicate deliveries
     (the envelope, context included, is byte-identical on replay). *)
  Pvtrace.with_remote_parent t.tracer ~trace:c.Proto.c_trace ~span:c.Proto.c_span
  @@ fun () ->
  Pvtrace.span t.tracer ~layer:"panfs.server" ~op:(Proto.req_name c.Proto.c_req)
  @@ fun () ->
  let key = (c.Proto.c_client, c.Proto.c_seq) in
  match Hashtbl.find_opt t.drc key with
  | Some resp ->
      Telemetry.incr t.i.drc_hits;
      Pvtrace.set_outcome t.tracer "cached";
      resp
  | None ->
      Telemetry.incr t.i.drc_misses;
      let resp = handle_req t c.Proto.c_req in
      (* a reply is a durability promise: the client drops its copy of any
         provenance this request carried, so Lasagna's queued WAP frames
         must reach the disk before the response leaves the server *)
      let resp =
        match t.lasagna with
        | None -> resp
        | Some l -> (
            match resp with
            | Proto.R_err _ -> resp
            | _ -> ( match Lasagna.commit_log l with Ok () -> resp | Error e -> err e))
      in
      Hashtbl.replace t.drc key resp;
      Queue.add key t.drc_order;
      if Queue.length t.drc_order > t.drc_capacity then
        Hashtbl.remove t.drc (Queue.pop t.drc_order);
      Telemetry.set t.i.drc_size (float_of_int (Hashtbl.length t.drc));
      resp

(* pnode of a file by inode, for the client's handle cache *)
let pnode_of_ino t ino =
  match t.lasagna with
  | None -> None
  | Some l -> (
      match Lasagna.file_handle l ino with
      | Ok h -> Some h.Dpapi.pnode
      | Error _ -> None)
