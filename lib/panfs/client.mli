(** The PA-NFS client (paper, Sections 6.1.1–6.1.2).

    Presents {!Vfs.ops} (mountable like any file system) and the DPAPI
    (routable by the client machine's distributor).  Freezes are
    client-local: the version is incremented locally and the freeze
    record travels to the server inside the next OP_PASSWRITE for that
    file, so [pass_read] answers with the correct version without a
    round trip.  Writes larger than the 64 KB block size are
    encapsulated in transactions; contiguous streaming writes are
    coalesced up to the block size (NFS wsize write-behind), flushed
    before any read/getattr/namespace operation (close-to-open
    consistency). *)

module Dpapi = Pass_core.Dpapi
module Ctx = Pass_core.Ctx
module Pnode = Pass_core.Pnode

type t

type stats = {
  mutable rpcs : int;
  mutable txns : int;
  mutable inline_writes : int;
  mutable retries : int;
  mutable backpressure : int;
}

val create :
  ?registry:Telemetry.registry ->
  ?wb_high_water:int ->
  ?piggyback:bool ->
  ?tracer:Pvtrace.t ->
  net:Proto.net ->
  handler:(Proto.call -> Proto.resp) ->
  ctx:Ctx.t ->
  mount_name:string ->
  unit ->
  t
(** [mount_name] is the volume name this client is mounted under on its
    machine; handles it returns carry it.  [registry] receives the
    [panfs.*] and [nfs.*] instruments, including the [panfs.rpc_latency]
    histogram of simulated round-trip nanoseconds (default
    {!Telemetry.default}).  [wb_high_water] (default 64) bounds the
    write-behind backlog used to ride out partitions: past it,
    provenance writes fail with [Eagain] (backpressure).

    [piggyback] (the default) lets coalesced writes to several files ride
    one [OP_PASSBATCH] envelope instead of one RPC each, and lets the
    backlog drain in batched envelopes; each envelope travels under a
    single sequence number, so replays hit the server's duplicate-request
    cache as one unit.  [~piggyback:false] restores one RPC per write for
    A/B comparison. *)

val stats : t -> stats
(** A point-in-time view over the [panfs.*] telemetry counters. *)

val crash : t -> unit
(** Simulate the client host dying: every subsequent call fails with
    ECRASH, leaving any in-flight transaction orphaned at the server. *)

val ops : t -> Vfs.ops
val endpoint : t -> Dpapi.endpoint
val file_handle : t -> Vfs.ino -> (Dpapi.handle, Vfs.errno) result

val flush : t -> (unit, Vfs.errno) result
(** Push both write-behind buffers (plain data and piggybacked
    provenance) to the server now.  Intended as the [?flush] close-to-open
    hook of {!Kernel.mount}; a partition parks provenance writes in the
    backlog instead of failing. *)

(** {1 Degraded mode}

    When the server stops answering (partition, restart), the retry
    budget is exhausted and provenance writes are parked in a bounded
    write-behind backlog instead of failing the application; past the
    high-water mark they fail with [Eagain].  The backlog replays in
    FIFO order before any new provenance write, read, or sync. *)

val backlog : t -> int
(** Provenance writes currently parked awaiting the server. *)

val drain_backlog : t -> (unit, Dpapi.error) result
(** Replay the backlog now; [Error Eagain] if the server is still
    unreachable (whatever drained stays drained). *)

(** {1 Transaction steps}

    Exposed so tests can crash a client between OP_BEGINTXN and the
    terminating OP_PASSWRITE; {!endpoint}'s [pass_write] drives them
    automatically for oversized writes. *)

val begin_txn : t -> (int, Dpapi.error) result
val send_prov_chunk : t -> txn:int -> Dpapi.bundle -> (unit, Dpapi.error) result

val end_txn_write :
  t -> txn:int -> Dpapi.handle -> off:int -> data:string option ->
  (int, Dpapi.error) result

val chunk_bundle : Dpapi.bundle -> Dpapi.bundle list
(** Split a bundle into chunks under the block size (oversized entries
    are split across several entries for the same target). *)

val pass_freeze : t -> Dpapi.handle -> (int, Dpapi.error) result
(** Client-local freeze (no RPC); also reachable via {!endpoint}. *)

val pass_read : t -> Dpapi.handle -> off:int -> len:int -> (Dpapi.read_result, Dpapi.error) result
val pass_write :
  t -> Dpapi.handle -> off:int -> data:string option -> Dpapi.bundle ->
  (int, Dpapi.error) result
