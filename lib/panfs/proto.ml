(* The PA-NFS protocol (paper §6.1): an NFSv4-flavoured operation set
   extended with the six DPAPI operations.

   Data-carrying provenance writes use OP_PASSWRITE.  When the combined
   data and provenance exceed the client block size (64 KB), the client
   encapsulates the write in a transaction: OP_BEGINTXN obtains a
   transaction id, a series of OP_PASSPROV operations carries the
   provenance in 64 KB chunks, and the final OP_PASSWRITE carries the data
   together with a single ENDTXN record.  The transaction id is what lets
   the server's Waldo identify orphaned provenance after a client crash.

   Messages are fully encodable and decodable: the transport serialises
   every request to bytes and the server decodes the datagram, so a
   duplicated or retransmitted message is a real byte-level replay.
   Requests travel in a call envelope carrying the client id and a
   per-client sequence number — the key of the server's NFSv4-style
   duplicate-request cache. *)

module Dpapi = Pass_core.Dpapi
module Pnode = Pass_core.Pnode

(* One provenance write riding in an OP_PASSBATCH envelope: the same
   fields as a non-transactional OP_PASSWRITE. *)
type batch_item = {
  bi_pnode : Pnode.t;
  bi_off : int;
  bi_data : string option;
  bi_bundle : Dpapi.bundle;
}

type req =
  | Lookup of { dir : Vfs.ino; name : string }
  | Create of { dir : Vfs.ino; name : string; kind : Vfs.kind }
  | Remove of { dir : Vfs.ino; name : string }
  | Rename of { src_dir : Vfs.ino; src_name : string; dst_dir : Vfs.ino; dst_name : string }
  | Getattr of { ino : Vfs.ino }
  | Readdir of { ino : Vfs.ino }
  | Read of { ino : Vfs.ino; off : int; len : int }
  | Write of { ino : Vfs.ino; off : int; data : string }
  | Truncate of { ino : Vfs.ino; size : int }
  | Commit of { ino : Vfs.ino }
  | Op_passread of { pnode : Pnode.t; off : int; len : int }
  | Op_passwrite of {
      pnode : Pnode.t;
      off : int;
      data : string option;
      bundle : Dpapi.bundle;
      txn : int option; (* set when this write terminates a transaction *)
    }
  | Op_begintxn
  | Op_passprov of { txn : int; chunk : Dpapi.bundle }
  | Op_passmkobj
  | Op_passreviveobj of { pnode : Pnode.t; version : int }
  | Op_passsync of { pnode : Pnode.t }
  | Op_pnode of { ino : Vfs.ino } (* pnode lookup for the client handle cache *)
  | Op_passbatch of { writes : batch_item list }
      (* several independent provenance writes piggybacked into one call
         envelope; the server applies them in order and the whole batch
         shares one duplicate-request-cache entry, so a replayed envelope
         replays the cached replies instead of re-applying any item *)

type resp =
  | R_err of Vfs.errno
  | R_ino of Vfs.ino
  | R_ok
  | R_attr of Vfs.stat
  | R_names of string list
  | R_data of string
  | R_passread of { data : string; pnode : Pnode.t; version : int }
  | R_version of int
  | R_txn of int
  | R_handle of { pnode : Pnode.t }
  | R_batch of resp list
      (* one reply per applied OP_PASSBATCH item, in order; the server
         stops at the first error, so the last element may be an R_err
         and items beyond it were not applied *)

(* 64 KB: the NFSv4 client block size that triggers transactions. *)
let block_limit = 65536

let kind_tag = function Vfs.Regular -> 0 | Vfs.Directory -> 1

let encode_batch_item buf (it : batch_item) =
  let open Wire in
  put_i64 buf (Pnode.to_int it.bi_pnode);
  put_i64 buf it.bi_off;
  (match it.bi_data with
  | None -> put_u8 buf 0
  | Some d -> put_u8 buf 1; put_string buf d);
  Dpapi.encode_bundle buf it.bi_bundle

let decode_batch_item s pos =
  let open Wire in
  let bi_pnode = Pnode.of_int (get_i64 s pos) in
  let bi_off = get_i64 s pos in
  let bi_data =
    match get_u8 s pos with
    | 0 -> None
    | 1 -> Some (get_string s pos)
    | t -> Wire.corrupt "panfs: bad option tag %d" t
  in
  let bi_bundle = Dpapi.decode_bundle s pos in
  { bi_pnode; bi_off; bi_data; bi_bundle }

let encode_req buf req =
  let open Wire in
  match req with
  | Lookup { dir; name } ->
      put_u8 buf 1; put_i64 buf dir; put_string buf name
  | Create { dir; name; kind } ->
      put_u8 buf 2; put_i64 buf dir; put_string buf name; put_u8 buf (kind_tag kind)
  | Remove { dir; name } -> put_u8 buf 3; put_i64 buf dir; put_string buf name
  | Rename { src_dir; src_name; dst_dir; dst_name } ->
      put_u8 buf 4; put_i64 buf src_dir; put_string buf src_name;
      put_i64 buf dst_dir; put_string buf dst_name
  | Getattr { ino } -> put_u8 buf 5; put_i64 buf ino
  | Readdir { ino } -> put_u8 buf 6; put_i64 buf ino
  | Read { ino; off; len } -> put_u8 buf 7; put_i64 buf ino; put_i64 buf off; put_i64 buf len
  | Write { ino; off; data } -> put_u8 buf 8; put_i64 buf ino; put_i64 buf off; put_string buf data
  | Truncate { ino; size } -> put_u8 buf 9; put_i64 buf ino; put_i64 buf size
  | Commit { ino } -> put_u8 buf 10; put_i64 buf ino
  | Op_passread { pnode; off; len } ->
      put_u8 buf 20; put_i64 buf (Pnode.to_int pnode); put_i64 buf off; put_i64 buf len
  | Op_passwrite { pnode; off; data; bundle; txn } ->
      put_u8 buf 21;
      put_i64 buf (Pnode.to_int pnode);
      put_i64 buf off;
      (match data with
      | None -> put_u8 buf 0
      | Some d -> put_u8 buf 1; put_string buf d);
      Dpapi.encode_bundle buf bundle;
      (match txn with None -> put_u8 buf 0 | Some id -> put_u8 buf 1; put_i64 buf id)
  | Op_begintxn -> put_u8 buf 22
  | Op_passprov { txn; chunk } ->
      put_u8 buf 23; put_i64 buf txn; Dpapi.encode_bundle buf chunk
  | Op_passmkobj -> put_u8 buf 24
  | Op_passreviveobj { pnode; version } ->
      put_u8 buf 25; put_i64 buf (Pnode.to_int pnode); put_i64 buf version
  | Op_passsync { pnode } -> put_u8 buf 26; put_i64 buf (Pnode.to_int pnode)
  | Op_pnode { ino } -> put_u8 buf 27; put_i64 buf ino
  | Op_passbatch { writes } -> put_u8 buf 28; put_list buf encode_batch_item writes

let rec encode_resp buf resp =
  let open Wire in
  match resp with
  | R_err e -> put_u8 buf 1; put_string buf (Vfs.errno_to_string e)
  | R_ino ino -> put_u8 buf 2; put_i64 buf ino
  | R_ok -> put_u8 buf 3
  | R_attr st ->
      put_u8 buf 4; put_i64 buf st.Vfs.st_ino; put_u8 buf (kind_tag st.st_kind);
      put_i64 buf st.st_size
  | R_names names -> put_u8 buf 5; put_list buf put_string names
  | R_data d -> put_u8 buf 6; put_string buf d
  | R_passread { data; pnode; version } ->
      put_u8 buf 7; put_string buf data; put_i64 buf (Pnode.to_int pnode); put_i64 buf version
  | R_version v -> put_u8 buf 8; put_i64 buf v
  | R_txn id -> put_u8 buf 9; put_i64 buf id
  | R_handle { pnode } -> put_u8 buf 10; put_i64 buf (Pnode.to_int pnode)
  | R_batch resps -> put_u8 buf 11; put_list buf encode_resp resps

let kind_of_tag = function
  | 0 -> Vfs.Regular
  | 1 -> Vfs.Directory
  | t -> Wire.corrupt "panfs: bad kind tag %d" t

let decode_req s pos =
  let open Wire in
  match get_u8 s pos with
  | 1 ->
      let dir = get_i64 s pos in
      let name = get_string s pos in
      Lookup { dir; name }
  | 2 ->
      let dir = get_i64 s pos in
      let name = get_string s pos in
      let kind = kind_of_tag (get_u8 s pos) in
      Create { dir; name; kind }
  | 3 ->
      let dir = get_i64 s pos in
      let name = get_string s pos in
      Remove { dir; name }
  | 4 ->
      let src_dir = get_i64 s pos in
      let src_name = get_string s pos in
      let dst_dir = get_i64 s pos in
      let dst_name = get_string s pos in
      Rename { src_dir; src_name; dst_dir; dst_name }
  | 5 -> Getattr { ino = get_i64 s pos }
  | 6 -> Readdir { ino = get_i64 s pos }
  | 7 ->
      let ino = get_i64 s pos in
      let off = get_i64 s pos in
      let len = get_i64 s pos in
      Read { ino; off; len }
  | 8 ->
      let ino = get_i64 s pos in
      let off = get_i64 s pos in
      let data = get_string s pos in
      Write { ino; off; data }
  | 9 ->
      let ino = get_i64 s pos in
      let size = get_i64 s pos in
      Truncate { ino; size }
  | 10 -> Commit { ino = get_i64 s pos }
  | 20 ->
      let pnode = Pnode.of_int (get_i64 s pos) in
      let off = get_i64 s pos in
      let len = get_i64 s pos in
      Op_passread { pnode; off; len }
  | 21 ->
      let pnode = Pnode.of_int (get_i64 s pos) in
      let off = get_i64 s pos in
      let data =
        match get_u8 s pos with
        | 0 -> None
        | 1 -> Some (get_string s pos)
        | t -> Wire.corrupt "panfs: bad option tag %d" t
      in
      let bundle = Dpapi.decode_bundle s pos in
      let txn =
        match get_u8 s pos with
        | 0 -> None
        | 1 -> Some (get_i64 s pos)
        | t -> Wire.corrupt "panfs: bad option tag %d" t
      in
      Op_passwrite { pnode; off; data; bundle; txn }
  | 22 -> Op_begintxn
  | 23 ->
      let txn = get_i64 s pos in
      let chunk = Dpapi.decode_bundle s pos in
      Op_passprov { txn; chunk }
  | 24 -> Op_passmkobj
  | 25 ->
      let pnode = Pnode.of_int (get_i64 s pos) in
      let version = get_i64 s pos in
      Op_passreviveobj { pnode; version }
  | 26 -> Op_passsync { pnode = Pnode.of_int (get_i64 s pos) }
  | 27 -> Op_pnode { ino = get_i64 s pos }
  | 28 -> Op_passbatch { writes = get_list decode_batch_item s pos }
  | t -> Wire.corrupt "panfs: bad request tag %d" t

let rec decode_resp s pos =
  let open Wire in
  match get_u8 s pos with
  | 1 -> (
      let name = get_string s pos in
      match Vfs.errno_of_string name with
      | Some e -> R_err e
      | None -> Wire.corrupt "panfs: bad errno %S" name)
  | 2 -> R_ino (get_i64 s pos)
  | 3 -> R_ok
  | 4 ->
      let st_ino = get_i64 s pos in
      let st_kind = kind_of_tag (get_u8 s pos) in
      let st_size = get_i64 s pos in
      R_attr { Vfs.st_ino; st_kind; st_size }
  | 5 -> R_names (get_list get_string s pos)
  | 6 -> R_data (get_string s pos)
  | 7 ->
      let data = get_string s pos in
      let pnode = Pnode.of_int (get_i64 s pos) in
      let version = get_i64 s pos in
      R_passread { data; pnode; version }
  | 8 -> R_version (get_i64 s pos)
  | 9 -> R_txn (get_i64 s pos)
  | 10 -> R_handle { pnode = Pnode.of_int (get_i64 s pos) }
  | 11 -> R_batch (get_list decode_resp s pos)
  | t -> Wire.corrupt "panfs: bad response tag %d" t

(* Size probes are issued for every provenance write (to pick between the
   inline and transactional paths); one scratch buffer replaces a fresh
   allocation per probe. *)
let size_scratch = Buffer.create 256

let req_size req =
  Buffer.clear size_scratch;
  encode_req size_scratch req;
  Buffer.length size_scratch

let resp_size resp =
  Buffer.clear size_scratch;
  encode_resp size_scratch resp;
  Buffer.length size_scratch

(* The call envelope: client id + per-client sequence number, the key of
   the server's duplicate-request cache.  A retransmission reuses the
   sequence number so the server replays its cached reply instead of
   re-executing the operation.

   The envelope also carries the client's pvtrace context (both ids 0
   when the client is untraced): the server parents its spans onto
   [c_span] within [c_trace].  The envelope is built once per logical
   call, so retransmissions and duplicate deliveries reuse the original
   context just as they reuse the sequence number. *)
type call = {
  c_client : int;
  c_seq : int;
  c_trace : int;
  c_span : int;
  c_req : req;
}

let encode_call buf c =
  Wire.put_i64 buf c.c_client;
  Wire.put_i64 buf c.c_seq;
  Wire.put_i64 buf c.c_trace;
  Wire.put_i64 buf c.c_span;
  encode_req buf c.c_req

let decode_call s pos =
  let c_client = Wire.get_i64 s pos in
  let c_seq = Wire.get_i64 s pos in
  let c_trace = Wire.get_i64 s pos in
  let c_span = Wire.get_i64 s pos in
  let c_req = decode_req s pos in
  { c_client; c_seq; c_trace; c_span; c_req }

(* Span-name component for an RPC request, used by client and server
   tracing ("panfs.client"/"rpc.write", "panfs.server"/"rpc.write"). *)
let req_name = function
  | Lookup _ -> "rpc.lookup"
  | Create _ -> "rpc.create"
  | Remove _ -> "rpc.remove"
  | Rename _ -> "rpc.rename"
  | Getattr _ -> "rpc.getattr"
  | Readdir _ -> "rpc.readdir"
  | Read _ -> "rpc.read"
  | Write _ -> "rpc.write"
  | Truncate _ -> "rpc.truncate"
  | Commit _ -> "rpc.commit"
  | Op_passread _ -> "rpc.passread"
  | Op_passwrite _ -> "rpc.passwrite"
  | Op_begintxn -> "rpc.begintxn"
  | Op_passprov _ -> "rpc.passprov"
  | Op_passmkobj -> "rpc.passmkobj"
  | Op_passreviveobj _ -> "rpc.passreviveobj"
  | Op_passsync _ -> "rpc.passsync"
  | Op_pnode _ -> "rpc.pnode"
  | Op_passbatch _ -> "rpc.passbatch"

(* The simulated network: a synchronous RPC charges one round trip of
   latency plus transfer at the link rate to the shared clock.  A fault
   plan can drop, delay or duplicate either datagram, or partition the
   link; the client above retries on [`Timeout]. *)
type net = {
  clock : Simdisk.Clock.t;
  latency_ns : int; (* one-way *)
  ns_per_byte : int;
  timeout_ns : int; (* how long the client waits before `Timeout *)
  fault : Fault.plan;
  mutable next_client : int;
  mutable messages : int;
  mutable bytes : int;
}

let net ?(latency_us = 150) ?(ns_per_byte = 8) ?(timeout_ms = 10) ?(fault = Fault.none) clock =
  {
    clock;
    latency_ns = Simdisk.Clock.ns_of_us latency_us;
    ns_per_byte;
    timeout_ns = Simdisk.Clock.ns_of_ms timeout_ms;
    fault;
    next_client = 1;
    messages = 0;
    bytes = 0;
  }

(* Client ids are per-net, not global, so repeated in-process runs with
   the same seed see identical ids (the determinism test depends on it). *)
let fresh_client net =
  let id = net.next_client in
  net.next_client <- id + 1;
  id

(* One datagram crossing the link.  Counted and charged even when the
   delivery is subsequently dropped: a lost message still consumed wire
   time, which is exactly what retransmission overhead measures. *)
let transmit net nbytes =
  net.messages <- net.messages + 1;
  net.bytes <- net.bytes + nbytes;
  Simdisk.Clock.advance net.clock (net.latency_ns + (nbytes * net.ns_per_byte))

let timed_out net =
  Simdisk.Clock.advance net.clock net.timeout_ns;
  Error `Timeout

(* Per-direction encode scratch: the RPC path is synchronous and handlers
   never issue nested RPCs, so one request and one response buffer serve
   every call ([Buffer.contents] copies out before the next reuse). *)
let req_scratch = Buffer.create 1024
let resp_scratch = Buffer.create 256

(* Byte-level delivery: decode the datagram, execute, encode the reply. *)
let deliver handler wire_req =
  let resp = handler (decode_call wire_req (ref 0)) in
  Buffer.clear resp_scratch;
  encode_resp resp_scratch resp;
  (resp, Buffer.contents resp_scratch)

let rpc net handler (c : call) =
  Buffer.clear req_scratch;
  encode_call req_scratch c;
  let wire_req = Buffer.contents req_scratch in
  let now = Simdisk.Clock.now net.clock in
  if Fault.partitioned net.fault ~now then begin
    transmit net (String.length wire_req);
    timed_out net
  end
  else
    match Fault.next_net_fault net.fault ~now with
    | Some Fault.Drop_request ->
        transmit net (String.length wire_req);
        timed_out net
    | Some (Fault.Partition_ns _) | Some (Fault.Server_restart_ns _) ->
        (* the draw opened the partition window and this datagram is
           already inside it *)
        transmit net (String.length wire_req);
        timed_out net
    | Some Fault.Drop_response ->
        (* the server executes and replies, but the reply is lost: the
           case the duplicate-request cache exists for *)
        transmit net (String.length wire_req);
        let _resp, wire_resp = deliver handler wire_req in
        transmit net (String.length wire_resp);
        timed_out net
    | Some Fault.Duplicate ->
        (* the request datagram is delivered twice; the second execution
           must hit the server's duplicate-request cache *)
        transmit net (String.length wire_req);
        let resp, wire_resp = deliver handler wire_req in
        transmit net (String.length wire_resp);
        transmit net (String.length wire_req);
        let _resp2, wire_resp2 = deliver handler wire_req in
        transmit net (String.length wire_resp2);
        Ok resp
    | Some (Fault.Delay_ns d) ->
        Simdisk.Clock.advance net.clock d;
        transmit net (String.length wire_req);
        let resp, wire_resp = deliver handler wire_req in
        transmit net (String.length wire_resp);
        Ok resp
    | None ->
        transmit net (String.length wire_req);
        let resp, wire_resp = deliver handler wire_req in
        transmit net (String.length wire_resp);
        Ok resp
