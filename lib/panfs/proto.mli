(** The PA-NFS protocol (paper, Section 6.1).

    An NFSv4-flavoured operation set extended with the six DPAPI
    operations: [OP_PASSREAD], [OP_PASSWRITE], [OP_BEGINTXN],
    [OP_PASSPROV], [OP_PASSMKOBJ], [OP_PASSREVIVEOBJ], [OP_PASSSYNC].
    When provenance plus data exceed the 64 KB client block size, the
    client encapsulates the write in a transaction so the server's Waldo
    can identify orphaned provenance after a client crash. *)

module Dpapi = Pass_core.Dpapi
module Pnode = Pass_core.Pnode

type batch_item = {
  bi_pnode : Pnode.t;
  bi_off : int;
  bi_data : string option;
  bi_bundle : Dpapi.bundle;
}
(** One provenance write riding in an [OP_PASSBATCH] envelope — the same
    fields as a non-transactional [OP_PASSWRITE]. *)

type req =
  | Lookup of { dir : Vfs.ino; name : string }
  | Create of { dir : Vfs.ino; name : string; kind : Vfs.kind }
  | Remove of { dir : Vfs.ino; name : string }
  | Rename of { src_dir : Vfs.ino; src_name : string; dst_dir : Vfs.ino; dst_name : string }
  | Getattr of { ino : Vfs.ino }
  | Readdir of { ino : Vfs.ino }
  | Read of { ino : Vfs.ino; off : int; len : int }
  | Write of { ino : Vfs.ino; off : int; data : string }
  | Truncate of { ino : Vfs.ino; size : int }
  | Commit of { ino : Vfs.ino }
  | Op_passread of { pnode : Pnode.t; off : int; len : int }
  | Op_passwrite of {
      pnode : Pnode.t;
      off : int;
      data : string option;
      bundle : Dpapi.bundle;
      txn : int option;
    }
  | Op_begintxn
  | Op_passprov of { txn : int; chunk : Dpapi.bundle }
  | Op_passmkobj
  | Op_passreviveobj of { pnode : Pnode.t; version : int }
  | Op_passsync of { pnode : Pnode.t }
  | Op_pnode of { ino : Vfs.ino }
  | Op_passbatch of { writes : batch_item list }
      (** Several independent provenance writes piggybacked into one call
          envelope.  The server applies them in order and the whole batch
          shares one duplicate-request-cache entry, so a replayed
          envelope replays the cached replies instead of re-applying any
          item. *)

type resp =
  | R_err of Vfs.errno
  | R_ino of Vfs.ino
  | R_ok
  | R_attr of Vfs.stat
  | R_names of string list
  | R_data of string
  | R_passread of { data : string; pnode : Pnode.t; version : int }
  | R_version of int
  | R_txn of int
  | R_handle of { pnode : Pnode.t }
  | R_batch of resp list
      (** One reply per applied [Op_passbatch] item, in order; the server
          stops at the first error, so the last element may be an [R_err]
          and items beyond it were not applied. *)

val block_limit : int
(** 64 KB: the client block size that triggers transactions. *)

val encode_req : Buffer.t -> req -> unit
val decode_req : string -> int ref -> req
val encode_resp : Buffer.t -> resp -> unit
val decode_resp : string -> int ref -> resp
(** Wire codecs; decoders raise {!Wire.Corrupt} on malformed input.
    Exposed so tests can round-trip every constructor — the transport
    decodes each delivered datagram, so replays are byte-level replays. *)

val req_size : req -> int
(** Encoded size in bytes (drives the simulated network cost). *)

val resp_size : resp -> int

(** {1 Call envelope}

    Client id + per-client sequence number: the key of the server's
    NFSv4-style duplicate-request cache.  Retransmissions reuse the
    sequence number so the server replays rather than re-executes.  The
    envelope also propagates the client's pvtrace context ([c_trace],
    [c_span], both 0 when untraced) so server-side spans parent onto the
    originating client RPC span; being part of the one-per-logical-call
    envelope, the context survives retries and duplicate deliveries. *)

type call = {
  c_client : int;
  c_seq : int;
  c_trace : int;
  c_span : int;
  c_req : req;
}

val encode_call : Buffer.t -> call -> unit
val decode_call : string -> int ref -> call

val req_name : req -> string
(** Span-name component for tracing: "rpc.lookup", "rpc.passwrite", ... *)

type net = {
  clock : Simdisk.Clock.t;
  latency_ns : int;
  ns_per_byte : int;
  timeout_ns : int;
  fault : Fault.plan;
  mutable next_client : int;
  mutable messages : int;
  mutable bytes : int;
}

val net :
  ?latency_us:int -> ?ns_per_byte:int -> ?timeout_ms:int -> ?fault:Fault.plan ->
  Simdisk.Clock.t -> net
(** A simulated LAN link; defaults approximate 2009-era gigabit.
    [timeout_ms] (default 10) is how long a client waits for a reply
    before [`Timeout]; [fault] (default {!Fault.none}) injects drops,
    delays, duplicates, partitions and restarts per its schedule. *)

val fresh_client : net -> int
(** Allocate a client id on this link (per-net, so same-seed runs are
    reproducible). *)

val rpc : net -> (call -> resp) -> call -> (resp, [ `Timeout ]) result
(** Synchronous RPC: encodes the call, charges each datagram's latency
    plus transfer to the shared clock ([messages]/[bytes] count every
    transmitted copy, including dropped and duplicated ones), and hands
    the decoded bytes to the handler.  Returns [`Timeout] when the fault
    plan loses either datagram or the link is partitioned; the caller
    retries with the same sequence number. *)
