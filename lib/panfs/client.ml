(* The PA-NFS client.

   Presents Vfs.ops (so it can be mounted like any file system, and so
   Lasagna-style layering above it keeps working) and the DPAPI (so the
   client machine's distributor can route provenance to the server volume).

   Versioning (paper §6.1.2): when the client's analyzer issues a
   pass_freeze, the client increments the version *locally* and attaches a
   freeze record to the file, so a subsequent pass_read returns the
   correct version without a server round trip.  The queued freeze records
   travel to the server inside the next OP_PASSWRITE for that file, which
   keeps freeze ordered with respect to the writes it protects.  Because
   of NFS close-to-open consistency, two clients can produce the same
   version number independently — version branching — which the paper
   accepts; [test_panfs] exercises it.

   Large writes (provenance + data > 64 KB) are encapsulated in
   transactions; the individual steps are exposed so tests can simulate a
   client crash between OP_BEGINTXN and the terminating OP_PASSWRITE. *)

module Dpapi = Pass_core.Dpapi
module Ctx = Pass_core.Ctx
module Record = Pass_core.Record
module Pnode = Pass_core.Pnode

type stats = {
  mutable rpcs : int;
  mutable txns : int;
  mutable inline_writes : int; (* pass_writes that fit in one OP_PASSWRITE *)
  mutable retries : int; (* retransmissions after a timeout *)
  mutable backpressure : int; (* EAGAINs returned when the backlog was full *)
}

(* Registry-backed instruments; [stats] is a view built on demand. *)
type instruments = {
  rpcs : Telemetry.counter;
  txns : Telemetry.counter;
  inline_writes : Telemetry.counter;
  rpc_latency : Telemetry.histogram; (* simulated ns per RPC round trip *)
  retries : Telemetry.counter; (* nfs.retries *)
  backpressure : Telemetry.counter; (* nfs.backpressure *)
  wb_queued : Telemetry.counter; (* nfs.wb_queued *)
  txns_abandoned : Telemetry.counter; (* nfs.txns_abandoned *)
  batch_rpcs : Telemetry.counter; (* nfs.batch_rpcs *)
  batched_writes : Telemetry.counter; (* nfs.batched_writes *)
  wb_backlog : Telemetry.gauge; (* nfs.wb_backlog: queued writes right now *)
}

let instruments registry =
  let c name = Telemetry.counter ?registry ("panfs." ^ name) in
  let n name = Telemetry.counter ?registry ("nfs." ^ name) in
  {
    rpcs = c "rpcs";
    txns = c "txns";
    inline_writes = c "inline_writes";
    rpc_latency = Telemetry.histogram ?registry "panfs.rpc_latency";
    retries = n "retries";
    backpressure = n "backpressure";
    wb_queued = n "wb_queued";
    txns_abandoned = n "txns_abandoned";
    batch_rpcs = n "batch_rpcs";
    batched_writes = n "batched_writes";
    wb_backlog = Telemetry.gauge ?registry "nfs.wb_backlog";
  }

(* Write-behind buffers: the client coalesces contiguous streaming writes
   up to the 64 KB block size before issuing one WRITE / OP_PASSWRITE, the
   way a real NFS client's wsize batching works.  Close-to-open
   consistency allows it: buffers are flushed before any read, getattr or
   namespace operation. *)
type plain_buf = { pb_ino : Vfs.ino; mutable pb_off : int; pb_data : Buffer.t }

type prov_buf = {
  vb_handle : Dpapi.handle;
  mutable vb_off : int;
  vb_data : Buffer.t;
  mutable vb_bundle : Dpapi.bundle; (* reversed *)
}

(* One provenance write waiting out a partition in the write-behind
   backlog. *)
type wb_item = {
  wi_handle : Dpapi.handle;
  wi_off : int;
  wi_data : string option;
  wi_bundle : Dpapi.bundle;
}

type t = {
  net : Proto.net;
  handler : Proto.call -> Proto.resp;
  ctx : Ctx.t; (* the client machine's context *)
  mount_name : string; (* volume name on the client *)
  pnode_cache : (Vfs.ino, Pnode.t) Hashtbl.t;
  pending_freezes : (Pnode.t, Record.t list) Hashtbl.t;
  tracer : Pvtrace.t;
  i : instruments;
  client_id : int;
  mutable seq : int;
  wb : wb_item Queue.t; (* provenance writes the server couldn't take *)
  wb_high_water : int;
  piggyback : bool; (* coalesce independent writes into OP_PASSBATCH *)
  mutable crashed : bool;
  mutable plain_pending : plain_buf option;
  mutable prov_pending : prov_buf list; (* newest first; one buffer per file *)
}

let create ?registry ?(wb_high_water = 64) ?(piggyback = true)
    ?(tracer = Pvtrace.disabled) ~net ~handler ~ctx ~mount_name () =
  {
    net; handler; ctx; mount_name;
    pnode_cache = Hashtbl.create 256;
    pending_freezes = Hashtbl.create 16;
    tracer;
    i = instruments registry;
    client_id = Proto.fresh_client net;
    seq = 0;
    wb = Queue.create ();
    wb_high_water = max 1 wb_high_water;
    piggyback;
    crashed = false;
    plain_pending = None;
    prov_pending = [];
  }

let stats t : stats =
  let v = Telemetry.value in
  {
    rpcs = v t.i.rpcs;
    txns = v t.i.txns;
    inline_writes = v t.i.inline_writes;
    retries = v t.i.retries;
    backpressure = v t.i.backpressure;
  }

(* Simulate the client host dying: every subsequent call fails.  Used by
   the orphaned-transaction tests. *)
let crash t = t.crashed <- true

(* Retry policy: capped exponential backoff.  The sequence number stays
   fixed across retransmissions of one call, so the server's
   duplicate-request cache replays rather than re-executes.  The backoff
   budget (~0.8 s of simulated time) comfortably outlives the fault
   plan's transient partitions but gives up on a long outage, at which
   point provenance writes fall back to the write-behind backlog. *)
let initial_backoff_ns = Simdisk.Clock.ns_of_ms 2
let backoff_cap_ns = Simdisk.Clock.ns_of_ms 50
let max_attempts = 16

(* [None] = the call timed out [max_attempts] times (server unreachable). *)
let call_opt t req =
  if t.crashed then Some (Proto.R_err Vfs.ECRASH)
  else begin
    Telemetry.incr t.i.rpcs;
    Telemetry.with_span t.i.rpc_latency
      ~now:(fun () -> Simdisk.Clock.now t.net.Proto.clock)
      (fun () ->
        Pvtrace.span t.tracer ~layer:"panfs.client" ~op:(Proto.req_name req)
        @@ fun () ->
        let seq = t.seq in
        t.seq <- seq + 1;
        (* The RPC span is the wire context.  The envelope — context
           included — is built once per logical call, so every
           retransmission carries the same trace and span ids, and the
           server parents the retried work onto the original span. *)
        let c_trace, c_span =
          match Pvtrace.current t.tracer with Some c -> c | None -> (0, 0)
        in
        let c = { Proto.c_client = t.client_id; c_seq = seq; c_trace; c_span; c_req = req } in
        let rec attempt n backoff =
          match Proto.rpc t.net t.handler c with
          | Ok resp -> Some resp
          | Error `Timeout ->
              if n + 1 >= max_attempts then None
              else begin
                Telemetry.incr t.i.retries;
                Simdisk.Clock.advance t.net.Proto.clock backoff;
                attempt (n + 1) (min (2 * backoff) backoff_cap_ns)
              end
        in
        match attempt 0 initial_backoff_ns with
        | Some _ as r -> r
        | None ->
            Pvtrace.set_outcome t.tracer "unreachable";
            None)
  end

let call t req =
  match call_opt t req with
  | Some resp -> resp
  | None -> Proto.R_err Vfs.EIO

let lift_err = function
  | Vfs.ENOENT -> Dpapi.Enoent
  | Vfs.EEXIST -> Dpapi.Eexist
  | Vfs.EINVAL -> Dpapi.Einval
  | Vfs.ESTALE | Vfs.EBADF -> Dpapi.Estale
  | Vfs.ENOSPC -> Dpapi.Enospc
  | Vfs.ECRASH -> Dpapi.Ecrashed
  | Vfs.EAGAIN -> Dpapi.Eagain
  | Vfs.EIO | Vfs.ENOTDIR | Vfs.EISDIR | Vfs.ENOTEMPTY -> Dpapi.Eio

let lower_err = function
  | Dpapi.Enoent -> Vfs.ENOENT
  | Dpapi.Eexist -> Vfs.EEXIST
  | Dpapi.Einval -> Vfs.EINVAL
  | Dpapi.Estale -> Vfs.ESTALE
  | Dpapi.Enospc -> Vfs.ENOSPC
  | Dpapi.Ecrashed -> Vfs.ECRASH
  | Dpapi.Ebadf -> Vfs.EBADF
  | Dpapi.Eagain -> Vfs.EAGAIN
  | Dpapi.Eio | Dpapi.Emsg _ -> Vfs.EIO

(* --- write-behind ------------------------------------------------------------ *)

let flush_plain t =
  match t.plain_pending with
  | None -> Ok ()
  | Some pb ->
      t.plain_pending <- None;
      if Buffer.length pb.pb_data = 0 then Ok ()
      else begin
        match
          call t (Proto.Write { ino = pb.pb_ino; off = pb.pb_off; data = Buffer.contents pb.pb_data })
        with
        | Proto.R_ok -> Ok ()
        | Proto.R_err e -> Error e
        | _ -> Error Vfs.EIO
      end

let buffered_plain_write t ino ~off data =
  let fits =
    match t.plain_pending with
    | Some pb -> pb.pb_ino = ino && pb.pb_off + Buffer.length pb.pb_data = off
    | None -> false
  in
  let ( let* ) = Result.bind in
  let* () = if fits then Ok () else flush_plain t in
  let pb =
    match t.plain_pending with
    | Some pb -> pb
    | None ->
        let pb = { pb_ino = ino; pb_off = off; pb_data = Buffer.create 8192 } in
        t.plain_pending <- Some pb;
        pb
  in
  Buffer.add_string pb.pb_data data;
  (* flush at the 64 KB block size, or immediately for a non-streaming
     (short) write *)
  if Buffer.length pb.pb_data >= Proto.block_limit || String.length data < 4096 then
    flush_plain t
  else Ok ()

(* --- handles ---------------------------------------------------------------- *)

let file_handle t ino =
  match Hashtbl.find_opt t.pnode_cache ino with
  | Some p -> Ok (Dpapi.handle ~volume:t.mount_name p)
  | None -> (
      match call t (Proto.Op_pnode { ino }) with
      | Proto.R_handle { pnode } ->
          Hashtbl.replace t.pnode_cache ino pnode;
          Ok (Dpapi.handle ~volume:t.mount_name pnode)
      | Proto.R_err e -> Error e
      | _ -> Error Vfs.EIO)

(* --- transactions (exposed for crash tests) --------------------------------- *)

let begin_txn t =
  match call t Proto.Op_begintxn with
  | Proto.R_txn id ->
      Telemetry.incr t.i.txns;
      Ok id
  | Proto.R_err e -> Error (lift_err e)
  | _ -> Error Dpapi.Eio

let send_prov_chunk t ~txn chunk =
  match call t (Proto.Op_passprov { txn; chunk }) with
  | Proto.R_ok -> Ok ()
  | Proto.R_err e -> Error (lift_err e)
  | _ -> Error Dpapi.Eio

let end_txn_write t ~txn (h : Dpapi.handle) ~off ~data =
  let endtxn =
    [ Dpapi.entry h [ Record.make Record.Attr.endtxn (Pass_core.Pvalue.Int txn) ] ]
  in
  match
    call t (Proto.Op_passwrite { pnode = h.pnode; off; data; bundle = endtxn; txn = Some txn })
  with
  | Proto.R_version v -> Ok v
  | Proto.R_err e -> Error (lift_err e)
  | _ -> Error Dpapi.Eio

(* Split a bundle into chunks whose encoded size stays under the 64 KB
   client block size.  An entry whose own record list is oversized is
   split into several entries for the same target. *)
let chunk_bundle bundle =
  let budget = Proto.block_limit - 1024 in
  (* first explode oversized entries *)
  let exploded =
    List.concat_map
      (fun (e : Dpapi.bundle_entry) ->
        if Dpapi.bundle_size [ e ] <= budget then [ e ]
        else begin
          let groups = ref [] and current = ref [] and size = ref 0 in
          List.iter
            (fun r ->
              let rsz =
                let buf = Buffer.create 64 in
                Record.encode buf r;
                Buffer.length buf
              in
              if !size + rsz > budget && !current <> [] then begin
                groups := List.rev !current :: !groups;
                current := [];
                size := 0
              end;
              current := r :: !current;
              size := !size + rsz)
            e.records;
          if !current <> [] then groups := List.rev !current :: !groups;
          List.rev_map (fun records -> Dpapi.entry e.target records) !groups
        end)
      bundle
  in
  let rec go current current_size acc = function
    | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
    | (e : Dpapi.bundle_entry) :: rest ->
        let sz = Dpapi.bundle_size [ e ] in
        if current <> [] && current_size + sz > budget then
          go [ e ] sz (List.rev current :: acc) rest
        else go (e :: current) (current_size + sz) acc rest
  in
  go [] 0 [] exploded

(* --- DPAPI face -------------------------------------------------------------- *)

let take_pending t pnode =
  match Hashtbl.find_opt t.pending_freezes pnode with
  | Some records ->
      Hashtbl.remove t.pending_freezes pnode;
      List.rev records
  | None -> []

let attach_pending t (h : Dpapi.handle) bundle =
  let pending = take_pending t h.pnode in
  if pending = [] then bundle else Dpapi.entry h pending :: bundle

(* The actual wire send: one OP_PASSWRITE, or a transaction when the
   bundle plus data exceed the block size.  [`Timeout] means the server
   never acknowledged (possibly mid-transaction — the server-side
   fragment becomes an orphan Waldo discards); the caller may park the
   write in the backlog and replay it later. *)
let send_passwrite_now t (h : Dpapi.handle) ~off ~data bundle =
  let total = Dpapi.bundle_size bundle + match data with Some d -> String.length d | None -> 0 in
  if total <= Proto.block_limit then begin
    Telemetry.incr t.i.inline_writes;
    match call_opt t (Proto.Op_passwrite { pnode = h.pnode; off; data; bundle; txn = None }) with
    | None -> Error `Timeout
    | Some (Proto.R_version v) -> Ok v
    | Some (Proto.R_err e) -> Error (`Err (lift_err e))
    | Some _ -> Error (`Err Dpapi.Eio)
  end
  else begin
    let step req ok_of =
      match call_opt t req with
      | None -> Error `Timeout
      | Some resp -> (
          match ok_of resp with
          | Some v -> Ok v
          | None -> (
              match resp with
              | Proto.R_err e -> Error (`Err (lift_err e))
              | _ -> Error (`Err Dpapi.Eio)))
    in
    let ( let* ) = Result.bind in
    let abandon r =
      (* a transaction that dies part-way is abandoned: its server-side
         fragment is an orphan for Waldo, and the whole write will be
         replayed under a fresh transaction id *)
      match r with
      | Error `Timeout -> Telemetry.incr t.i.txns_abandoned; r
      | _ -> r
    in
    let* txn =
      step Proto.Op_begintxn (function Proto.R_txn id -> Some id | _ -> None)
    in
    Telemetry.incr t.i.txns;
    abandon
      (let* () =
         List.fold_left
           (fun acc chunk ->
             let* () = acc in
             step (Proto.Op_passprov { txn; chunk }) (function
               | Proto.R_ok -> Some ()
               | _ -> None))
           (Ok ()) (chunk_bundle bundle)
       in
       step
         (Proto.Op_passwrite
            { pnode = h.pnode; off; data;
              bundle =
                [ Dpapi.entry h
                    [ Record.make Record.Attr.endtxn (Pass_core.Pvalue.Int txn) ] ];
              txn = Some txn })
         (function Proto.R_version v -> Some v | _ -> None))
  end

(* --- piggybacked batches ------------------------------------------------------ *)

(* Encoded-size budget for one OP_PASSBATCH envelope (headroom for the
   item framing, mirroring the inline/transaction split). *)
let batch_budget = Proto.block_limit - 1024
let max_batch_items = 16

let item_size (it : wb_item) =
  Dpapi.bundle_size it.wi_bundle
  + match it.wi_data with Some d -> String.length d | None -> 0

(* One OP_PASSBATCH envelope carrying [items] (oldest first, combined
   size within budget).  The whole batch travels under a single sequence
   number, so a retransmitted or duplicated envelope hits the server's
   duplicate-request cache as one unit and no item is ever re-applied.
   [Ok v] = every item applied; [`Err (e, n)] = the first [n] items
   applied, item [n] failed with [e] and the rest were not attempted. *)
let send_batch_now t items =
  Telemetry.incr t.i.batch_rpcs;
  Telemetry.add t.i.batched_writes (List.length items);
  let writes =
    List.map
      (fun (it : wb_item) ->
        { Proto.bi_pnode = it.wi_handle.Dpapi.pnode; bi_off = it.wi_off;
          bi_data = it.wi_data; bi_bundle = it.wi_bundle })
      items
  in
  match call_opt t (Proto.Op_passbatch { writes }) with
  | None -> Error `Timeout
  | Some (Proto.R_batch resps) ->
      let rec walk n last = function
        | [] -> if n = List.length items then Ok last else Error (`Err (Dpapi.Eio, n))
        | Proto.R_version v :: rest -> walk (n + 1) v rest
        | Proto.R_err e :: _ -> Error (`Err (lift_err e, n))
        | _ :: _ -> Error (`Err (Dpapi.Eio, n))
      in
      walk 0 0 resps
  | Some (Proto.R_err e) -> Error (`Err (lift_err e, 0))
  | Some _ -> Error (`Err (Dpapi.Eio, 0))

(* --- write-behind backlog (graceful degradation under partition) ------------- *)

let backlog t = Queue.length t.wb

(* Replay queued writes in FIFO order, piggybacking inline-sized runs
   into one OP_PASSBATCH envelope.  [`Blocked] = the server is still
   unreachable; everything not yet applied stays queued. *)
let drain_backlog_internal t =
  (* longest queue prefix that fits one envelope (never removes) *)
  let batchable_prefix () =
    let rec take seq acc n sz =
      if n >= max_batch_items then List.rev acc
      else
        match Seq.uncons seq with
        | Some (it, rest) ->
            let s = item_size it in
            if s <= batch_budget && sz + s <= batch_budget then
              take rest (it :: acc) (n + 1) (sz + s)
            else List.rev acc
        | None -> List.rev acc
    in
    take (Queue.to_seq t.wb) [] 0 0
  in
  let pop_n n =
    for _ = 1 to n do ignore (Queue.pop t.wb : wb_item) done;
    Telemetry.set t.i.wb_backlog (float_of_int (Queue.length t.wb))
  in
  let rec go () =
    match Queue.peek_opt t.wb with
    | None -> Ok ()
    | Some it -> (
        match if t.piggyback then batchable_prefix () else [] with
        | [] | [ _ ] -> (
            (* a lone or oversized head goes down the single-write path
               (which picks the transaction route when necessary) *)
            match
              send_passwrite_now t it.wi_handle ~off:it.wi_off ~data:it.wi_data it.wi_bundle
            with
            | Ok _ ->
                pop_n 1;
                go ()
            | Error `Timeout -> Error `Blocked
            | Error (`Err e) ->
                (* a hard server error is not transient: surface it rather
                   than wedging the queue behind an unservable item *)
                pop_n 1;
                Error (`Err e))
        | items -> (
            match send_batch_now t items with
            | Ok _ ->
                pop_n (List.length items);
                go ()
            | Error `Timeout -> Error `Blocked
            | Error (`Err (e, applied)) ->
                (* the applied prefix and the failing item leave the
                   queue; items behind them were not attempted and stay *)
                pop_n (applied + 1);
                Error (`Err e)))
  in
  go ()

let enqueue_wb t (h : Dpapi.handle) ~off ~data bundle =
  if Queue.length t.wb >= t.wb_high_water then begin
    Telemetry.incr t.i.backpressure;
    Error Dpapi.Eagain
  end
  else begin
    Telemetry.incr t.i.wb_queued;
    Queue.add { wi_handle = h; wi_off = off; wi_data = data; wi_bundle = bundle } t.wb;
    Telemetry.set t.i.wb_backlog (float_of_int (Queue.length t.wb));
    Ok (Ctx.current_version t.ctx h.pnode)
  end

let enqueue_items t items =
  List.fold_left
    (fun acc (it : wb_item) ->
      match acc with
      | Error _ as e -> e
      | Ok _ -> enqueue_wb t it.wi_handle ~off:it.wi_off ~data:it.wi_data it.wi_bundle)
    (Ok 0) items

let send_passwrite t (h : Dpapi.handle) ~off ~data bundle =
  let bundle = attach_pending t h bundle in
  match drain_backlog_internal t with
  | Error `Blocked ->
      (* still partitioned: preserve ordering by queueing behind the
         existing backlog *)
      enqueue_wb t h ~off ~data bundle
  | Error (`Err e) -> Error e
  | Ok () -> (
      match send_passwrite_now t h ~off ~data bundle with
      | Ok v -> Ok v
      | Error (`Err e) -> Error e
      | Error `Timeout -> enqueue_wb t h ~off ~data bundle)

(* Send an ordered run of independent writes, piggybacking inline-sized
   groups into OP_PASSBATCH envelopes; an oversized item travels alone
   (transaction path).  Timeouts park everything not yet acknowledged in
   the backlog, in order, exactly like the single-write path. *)
let send_items t items =
  match drain_backlog_internal t with
  | Error (`Err e) -> Error e
  | Error `Blocked -> enqueue_items t items
  | Ok () ->
      let groups =
        let rec go cur cur_sz acc = function
          | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
          | it :: rest ->
              let s = item_size it in
              if s > batch_budget then
                go [] 0
                  ([ it ] :: (if cur = [] then acc else List.rev cur :: acc))
                  rest
              else if cur <> [] && (cur_sz + s > batch_budget || List.length cur >= max_batch_items)
              then go [ it ] s (List.rev cur :: acc) rest
              else go (it :: cur) (cur_sz + s) acc rest
        in
        go [] 0 [] items
      in
      let rec send last = function
        | [] -> Ok last
        | group :: gs -> (
            match group with
            | [ (it : wb_item) ] -> (
                match
                  send_passwrite_now t it.wi_handle ~off:it.wi_off ~data:it.wi_data it.wi_bundle
                with
                | Ok v -> send v gs
                | Error (`Err e) -> Error e
                | Error `Timeout -> enqueue_items t (List.concat (group :: gs)))
            | _ -> (
                match send_batch_now t group with
                | Ok v -> send v gs
                | Error (`Err (e, _)) -> Error e
                | Error `Timeout -> enqueue_items t (List.concat (group :: gs))))
      in
      send 0 groups

let drain_backlog t =
  match drain_backlog_internal t with
  | Ok () -> Ok ()
  | Error `Blocked -> Error Dpapi.Eagain
  | Error (`Err e) -> Error e

(* Flush the DPAPI write-behind buffers: one OP_PASSWRITE (or transaction)
   per file when a single file is pending, one OP_PASSBATCH envelope when
   several files' coalesced writes ride together. *)
let flush_prov t =
  match t.prov_pending with
  | [] -> Ok 0
  | [ vb ] ->
      t.prov_pending <- [];
      send_passwrite t vb.vb_handle ~off:vb.vb_off
        ~data:(Some (Buffer.contents vb.vb_data))
        (List.rev vb.vb_bundle)
  | pending ->
      t.prov_pending <- [];
      let items =
        List.rev_map
          (fun vb ->
            { wi_handle = vb.vb_handle; wi_off = vb.vb_off;
              wi_data = Some (Buffer.contents vb.vb_data);
              wi_bundle = attach_pending t vb.vb_handle (List.rev vb.vb_bundle) })
          pending
      in
      send_items t items

(* --- VFS face -------------------------------------------------------------- *)

(* Close-to-open consistency: both write-behind buffers — the plain one
   and the provenance/data riders — flush before any read, getattr or
   namespace operation observes server state. *)
let ops t : Vfs.ops =
  let bad = Error Vfs.EIO in
  let flush_then f =
    match flush_prov t with
    | Error e -> Error (lower_err e)
    | Ok _ -> ( match flush_plain t with Error e -> Error e | Ok () -> f ())
  in
  {
    root = (fun () -> Ext3.root_ino);
    lookup =
      (fun ~dir name ->
        flush_then (fun () ->
            match call t (Proto.Lookup { dir; name }) with
            | Proto.R_ino ino -> Ok ino
            | Proto.R_err e -> Error e
            | _ -> bad));
    create =
      (fun ~dir name kind ->
        flush_then (fun () ->
            match call t (Proto.Create { dir; name; kind }) with
            | Proto.R_ino ino -> Ok ino
            | Proto.R_err e -> Error e
            | _ -> bad));
    unlink =
      (fun ~dir name ->
        flush_then (fun () ->
            match call t (Proto.Remove { dir; name }) with
            | Proto.R_ok -> Ok ()
            | Proto.R_err e -> Error e
            | _ -> bad));
    rename =
      (fun ~src_dir ~src_name ~dst_dir ~dst_name ->
        flush_then (fun () ->
            match call t (Proto.Rename { src_dir; src_name; dst_dir; dst_name }) with
            | Proto.R_ok -> Ok ()
            | Proto.R_err e -> Error e
            | _ -> bad));
    read =
      (fun ino ~off ~len ->
        flush_then (fun () ->
            match call t (Proto.Read { ino; off; len }) with
            | Proto.R_data d -> Ok d
            | Proto.R_err e -> Error e
            | _ -> bad));
    write = (fun ino ~off data -> buffered_plain_write t ino ~off data);
    truncate =
      (fun ino size ->
        flush_then (fun () ->
            match call t (Proto.Truncate { ino; size }) with
            | Proto.R_ok -> Ok ()
            | Proto.R_err e -> Error e
            | _ -> bad));
    getattr =
      (fun ino ->
        flush_then (fun () ->
            match call t (Proto.Getattr { ino }) with
            | Proto.R_attr st -> Ok st
            | Proto.R_err e -> Error e
            | _ -> bad));
    readdir =
      (fun ino ->
        flush_then (fun () ->
            match call t (Proto.Readdir { ino }) with
            | Proto.R_names names -> Ok names
            | Proto.R_err e -> Error e
            | _ -> bad));
    fsync =
      (fun ino ->
        flush_then (fun () ->
            match call t (Proto.Commit { ino }) with
            | Proto.R_ok -> Ok ()
            | Proto.R_err e -> Error e
            | _ -> bad));
    sync =
      (fun () ->
        match flush_prov t with
        | Error e -> Error (lower_err e)
        | Ok _ -> flush_plain t);
  }

let pass_read t (h : Dpapi.handle) ~off ~len =
  (match flush_prov t with Ok _ -> () | Error _ -> ());
  (match drain_backlog t with Ok () -> () | Error _ -> ());
  (match flush_plain t with Ok () -> () | Error _ -> ());
  match call t (Proto.Op_passread { pnode = h.pnode; off; len }) with
  | Proto.R_passread { data; pnode; version } ->
      Ctx.adopt t.ctx pnode ~version;
      (* the local view may be ahead (local freezes): serve the local
         version, no server trip needed (§6.1.2) *)
      Ok { Dpapi.data; r_pnode = pnode; r_version = Ctx.current_version t.ctx pnode }
  | Proto.R_err e -> Error (lift_err e)
  | _ -> Error Dpapi.Eio

let pending_size t =
  List.fold_left
    (fun n vb -> n + Buffer.length vb.vb_data + Dpapi.bundle_size vb.vb_bundle)
    0 t.prov_pending

let find_pending t (h : Dpapi.handle) =
  List.find_opt (fun vb -> Pnode.equal vb.vb_handle.Dpapi.pnode h.pnode) t.prov_pending

let pass_write t (h : Dpapi.handle) ~off ~data bundle =
  let ( let* ) = Result.bind in
  match data with
  | None ->
      (* provenance-only: merge into this file's pending buffer, else send
         through directly *)
      (match find_pending t h with
      | Some vb ->
          vb.vb_bundle <- List.rev_append bundle vb.vb_bundle;
          Ok (Ctx.current_version t.ctx h.pnode)
      | None -> send_passwrite t h ~off ~data bundle)
  | Some d ->
      (* would appending [d] (plus its records) overflow the 64 KB client
         block?  flush first so the coalesced writes stay a single
         envelope (headroom for the encoded bundles).  With [piggyback] a
         write to a new file starts a rider buffer instead of flushing,
         so several small files travel in one OP_PASSBATCH. *)
      let incoming = String.length d + Dpapi.bundle_size bundle in
      if incoming > batch_budget then
        (* can never ride an envelope: flush what is queued (order) and
           send straight down — the transaction path takes over *)
        let* _ = flush_prov t in
        send_passwrite t h ~off ~data bundle
      else
      let contiguous =
        match find_pending t h with
        | Some vb -> vb.vb_off + Buffer.length vb.vb_data = off
        | None -> false
      in
      let room = pending_size t + incoming <= batch_budget in
      let fits = contiguous && room in
      let rides =
        t.piggyback && find_pending t h = None && room
        && List.length t.prov_pending < max_batch_items
      in
      let* () =
        if fits || rides then Ok ()
        else match flush_prov t with Ok _ -> Ok () | Error e -> Error e
      in
      let vb =
        match find_pending t h with
        | Some vb -> vb
        | None ->
            let vb = { vb_handle = h; vb_off = off; vb_data = Buffer.create 8192; vb_bundle = [] } in
            t.prov_pending <- vb :: t.prov_pending;
            vb
      in
      Buffer.add_string vb.vb_data d;
      vb.vb_bundle <- List.rev_append bundle vb.vb_bundle;
      if (not t.piggyback) && String.length d < 4096 then
        let* _v = flush_prov t in
        Ok (Ctx.current_version t.ctx h.pnode)
      else Ok (Ctx.current_version t.ctx h.pnode)

let pass_freeze t (h : Dpapi.handle) =
  let old_version = Ctx.current_version t.ctx h.pnode in
  let version = Ctx.freeze t.ctx h.pnode in
  let records =
    [ Record.make Record.Attr.freeze (Pass_core.Pvalue.Int version);
      Record.input_of h.pnode old_version ]
  in
  let prev = Option.value (Hashtbl.find_opt t.pending_freezes h.pnode) ~default:[] in
  Hashtbl.replace t.pending_freezes h.pnode (List.rev_append records prev);
  Ok version

let pass_mkobj t =
  match call t Proto.Op_passmkobj with
  | Proto.R_handle { pnode } ->
      Ctx.adopt t.ctx pnode ~version:0;
      Ok (Dpapi.handle ~volume:t.mount_name pnode)
  | Proto.R_err e -> Error (lift_err e)
  | _ -> Error Dpapi.Eio

let pass_reviveobj t pnode version =
  match call t (Proto.Op_passreviveobj { pnode; version }) with
  | Proto.R_handle { pnode } -> Ok (Dpapi.handle ~volume:t.mount_name pnode)
  | Proto.R_err e -> Error (lift_err e)
  | _ -> Error Dpapi.Eio

let pass_sync t (h : Dpapi.handle) =
  (* flush buffered writes, the partition backlog and pending freeze
     records, then sync; EAGAIN while the backlog cannot drain *)
  let ( let*! ) r f = match r with Ok _ -> f () | Error e -> Error e in
  let*! () = flush_prov t in
  let*! () = drain_backlog t in
  let pending = take_pending t h.pnode in
  let ( let* ) = Result.bind in
  let* () =
    if pending = [] then Ok ()
    else
      match
        call t
          (Proto.Op_passwrite
             { pnode = h.pnode; off = 0; data = None; bundle = [ Dpapi.entry h pending ];
               txn = None })
      with
      | Proto.R_version _ -> Ok ()
      | Proto.R_err e -> Error (lift_err e)
      | _ -> Error Dpapi.Eio
  in
  match call t (Proto.Op_passsync { pnode = h.pnode }) with
  | Proto.R_ok -> Ok ()
  | Proto.R_err e -> Error (lift_err e)
  | _ -> Error Dpapi.Eio

(* Close-to-open flush hook (for [Kernel.mount ~flush]): push both
   write-behind buffers now.  A partition parks provenance in the backlog
   instead of failing the close. *)
let flush t =
  match flush_prov t with
  | Error e -> Error (lower_err e)
  | Ok _ -> flush_plain t

let endpoint t : Dpapi.endpoint =
  {
    pass_read = (fun h ~off ~len -> pass_read t h ~off ~len);
    pass_write = (fun h ~off ~data b -> pass_write t h ~off ~data b);
    pass_freeze = (fun h -> pass_freeze t h);
    pass_mkobj = (fun ~volume:_ -> pass_mkobj t);
    pass_reviveobj = (fun p v -> pass_reviveobj t p v);
    pass_sync = (fun h -> pass_sync t h);
  }
