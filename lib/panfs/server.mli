(** The NFS server (paper, Section 6.1).

    In [Plain] mode it exports an ext3sim volume (the NFS baseline of
    Table 2).  In [Pass_enabled] mode the exported volume is
    Lasagna-stacked and the server runs its own analyzer above Lasagna —
    the paper's argument that with multiple clients, only the server sees
    all related provenance records, so analyzers are needed at both ends
    of the protocol, both speaking DPAPI. *)

module Ctx = Pass_core.Ctx
module Clock = Simdisk.Clock
module Disk = Simdisk.Disk

type mode = Plain | Pass_enabled

type t

val create :
  ?registry:Telemetry.registry ->
  ?fault:Fault.plan ->
  ?tracer:Pvtrace.t ->
  mode:mode ->
  clock:Clock.t ->
  machine:int ->
  volume:string ->
  unit ->
  t
(** [clock] is shared with the clients so server disk time appears as
    client-visible latency.  [registry] receives the [panfs.server.*] and
    [nfs.drc.*] counters, plus the instruments of the embedded disk and —
    in [Pass_enabled] mode — Lasagna, analyzer and Waldo (default
    {!Telemetry.default}).  [fault] is forwarded to the server's disk. *)

val handle : t -> Proto.call -> Proto.resp
(** Serve one call (the simulated transport calls this).  A call whose
    (client id, sequence number) is in the duplicate-request cache is
    answered from the cache — replayed, not re-executed — which is what
    makes retransmitted non-idempotent operations safe.  The cache
    persists across simulated server restarts, as NFSv4.1's persistent
    reply cache does. *)

val ctx : t -> Ctx.t
val waldo : t -> Waldo.t option
val lasagna : t -> Lasagna.t option
val disk : t -> Disk.t
val ext3 : t -> Ext3.t

val db : t -> Provdb.t option
(** The server's provenance database (drain first for a complete view). *)

val drain : t -> int
(** Flush the WAP logs into Waldo; returns orphaned transactions
    discarded (e.g. after a client crash mid-transaction). *)

val pnode_of_ino : t -> Vfs.ino -> Pass_core.Pnode.t option
