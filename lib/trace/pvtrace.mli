(** pvtrace: causal span tracing for the provenance pipeline (DESIGN §10).

    Every simos system call mints a root span; every DPAPI call it triggers
    opens a child span as the record travels observer → analyzer →
    distributor → Lasagna → Waldo.  The context crosses the PA-NFS wire in
    the {!Proto.call} envelope, so server-side spans parent onto the
    originating client RPC span, surviving retries and duplicate-request
    cache hits (retransmissions reuse the envelope, hence the ids).

    Determinism rules: span and trace ids are sequential allocators;
    timestamps come from the simulated clock; recording charges no
    simulated time.  Same workload + same fault seed ⇒ byte-identical
    exports.  The flight recorder is a bounded ring buffer that overwrites
    the oldest span; because a parent always completes (and is recorded)
    after its children, eviction never leaves a surviving span with a
    dangling parent.  Tracing is zero-cost when disabled, like
    {!Fault.none}: the {!disabled} singleton makes every hook a single
    branch. *)

type span = {
  sp_trace : int;  (** trace id: one per root (syscall or stray event) *)
  sp_id : int;  (** span id, unique per tracer *)
  sp_parent : int;  (** parent span id; 0 = root *)
  sp_layer : string;  (** e.g. "analyzer", "panfs.server" *)
  sp_op : string;  (** e.g. "pass_write", "syscall.read" *)
  sp_pnode : int;  (** subject pnode; 0 = none *)
  sp_start_ns : int;  (** simulated-clock start *)
  sp_dur_ns : int;  (** simulated duration; 0 for instantaneous events *)
  sp_outcome : string;  (** "ok", "emitted", "deduped", "cached", ... *)
}

type t

val disabled : t
(** The inactive tracer: every operation is a no-op costing one branch.
    The default everywhere a [?tracer] is accepted. *)

val create : ?capacity:int -> ?now:(unit -> int) -> unit -> t
(** An enabled tracer with a flight-recorder ring of [capacity] spans
    (default 262144).  [now] supplies simulated-ns timestamps (default:
    constant 0 until {!set_now} wires in a machine clock). *)

val set_now : t -> (unit -> int) -> unit
(** Wire the tracer to a simulated clock.  {!System.create} calls this
    with its machine clock when handed an enabled tracer. *)

val enabled : t -> bool
val capacity : t -> int

val recorded : t -> int
(** Spans currently held in the ring (≤ capacity). *)

val total : t -> int
(** Spans recorded over the tracer's lifetime, including evicted ones. *)

val dropped : t -> int
(** [total - recorded]: spans evicted by the bounded ring. *)

val reset : t -> unit
(** Empty the ring and the ambient stack; allocators keep counting so ids
    stay unique across resets. *)

val spans : t -> span list
(** Ring contents, oldest first (completion order). *)

val on_record : t -> (span -> unit) -> unit
(** Install the completion sink: [f sp] runs for every span the tracer
    records, in completion order — children strictly before their
    parents, which makes a streaming self-vs-children fold (pvmon's
    attribution) exact.  One sink per tracer (a later call replaces the
    earlier); no-op on {!disabled}.  The sink must not open spans. *)

val open_frames : t -> (string * string) list
(** The [(layer, op)] path of currently-open real spans, outermost
    first.  Called from inside an {!on_record} sink this is the recorded
    span's ancestor path, because a span's own frame is popped before it
    is recorded.  Virtual wire-context frames are skipped.  [[]] when
    disabled. *)

val span : t -> layer:string -> op:string -> ?pnode:int -> (unit -> 'a) -> 'a
(** [span t ~layer ~op f] runs [f] inside a new span.  The span parents
    onto the innermost open span (a fresh trace is minted at top level),
    and is recorded when [f] returns or raises.  Outcome defaults to
    "ok"; override with {!set_outcome}. *)

val event : t -> layer:string -> op:string -> ?pnode:int -> outcome:string -> unit -> unit
(** An instantaneous span (dur 0) recorded immediately, parented onto the
    innermost open span.  Used for layer decisions: deduped, cycle-broken,
    cached, flushed, replayed. *)

val set_outcome : t -> string -> unit
(** Set the outcome of the innermost open span (no-op at top level). *)

val current : t -> (int * int) option
(** [(trace_id, span_id)] of the innermost open span — what the PA-NFS
    client copies into the call envelope.  [None] when disabled or at top
    level. *)

val with_remote_parent : t -> trace:int -> span:int -> (unit -> 'a) -> 'a
(** Run [f] with a wire-carried context installed as ambient parent: spans
    opened inside parent onto the remote [span] within [trace].  No span
    is recorded for the virtual frame itself.  [trace = 0] (untraced
    sender) runs [f] unchanged. *)

val to_chrome : ?filter:string -> t -> string
(** Chrome trace-event JSON (chrome://tracing, Perfetto): complete "X"
    events, [ts]/[dur] in microseconds, one row ([tid]) per trace, span
    ids and outcomes under [args].  [filter] keeps spans whose layer (or
    "layer.op" name) sits under the dotted prefix, via
    {!Telemetry.name_under}.  Deterministic byte-for-byte. *)

val to_json : ?filter:string -> t -> Telemetry.Json.t
(** The same spans as a [Telemetry.Json] tree (schema "pvtrace/v1"):
    counts, drops, capacity, and one object per span. *)
