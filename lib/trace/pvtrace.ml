(* pvtrace: causal span tracing for the provenance pipeline (DESIGN §10).

   The provenance of a provenance record: which syscall bred it, which
   layer deduplicated / cycle-broke / cached / flushed / replayed it, and
   what each hop cost in simulated time.  Spans form a tree per root
   (system call or stray event); the PA-NFS client exports the ambient
   context into the call envelope so server-side spans parent onto the
   originating client RPC span across the wire.

   Determinism is load-bearing (DESIGN §9): ids come from sequential
   allocators, timestamps from the simulated machine clock, and recording
   never advances that clock, so enabling tracing cannot perturb a run.
   The flight recorder is a bounded ring that overwrites the oldest span.
   Because spans are recorded at completion and a parent always completes
   after its children — remote parents included: the client RPC span
   outlives the server work it caused — eviction removes children before
   their parents, so surviving spans never dangle.

   Zero-cost when disabled, after lib/fault's gate: [disabled] is a
   singleton whose every hook is one branch, and layers default to it. *)

type span = {
  sp_trace : int;
  sp_id : int;
  sp_parent : int;
  sp_layer : string;
  sp_op : string;
  sp_pnode : int;
  sp_start_ns : int;
  sp_dur_ns : int;
  sp_outcome : string;
}

(* An open span.  Virtual frames carry a wire-received context: they give
   parentage to children but are never recorded themselves. *)
type frame = {
  f_trace : int;
  f_id : int;
  f_parent : int;
  f_layer : string;
  f_op : string;
  f_pnode : int;
  f_start : int;
  mutable f_outcome : string;
  f_virtual : bool;
}

type t = {
  on : bool;
  cap : int;
  ring : span option array; (* [||] when disabled *)
  mutable head : int; (* next write slot *)
  mutable filled : int;
  mutable lifetime : int; (* total spans ever recorded *)
  mutable next_trace : int;
  mutable next_span : int;
  mutable stack : frame list; (* innermost open span first *)
  mutable now : unit -> int;
  mutable sink : (span -> unit) option; (* completion hook (pvmon's fold) *)
}

let zero () = 0

let disabled =
  { on = false; cap = 0; ring = [||]; head = 0; filled = 0; lifetime = 0;
    next_trace = 1; next_span = 1; stack = []; now = zero; sink = None }

let default_capacity = 1 lsl 18

let create ?(capacity = default_capacity) ?(now = zero) () =
  let cap = max 1 capacity in
  { on = true; cap; ring = Array.make cap None; head = 0; filled = 0;
    lifetime = 0; next_trace = 1; next_span = 1; stack = []; now;
    sink = None }

let set_now t now = if t.on then t.now <- now
let enabled t = t.on
let capacity t = t.cap
let recorded t = t.filled
let total t = t.lifetime
let dropped t = t.lifetime - t.filled

let reset t =
  if t.on then begin
    Array.fill t.ring 0 t.cap None;
    t.head <- 0;
    t.filled <- 0;
    t.lifetime <- 0;
    t.stack <- []
  end

(* [record] is the single point every completed span passes through
   (span finish and instantaneous events alike), so the sink sees the
   full completion stream in order — children before parents, which is
   what makes pvmon's streaming attribution fold exact. *)
let record t sp =
  t.lifetime <- t.lifetime + 1;
  t.ring.(t.head) <- Some sp;
  t.head <- (t.head + 1) mod t.cap;
  if t.filled < t.cap then t.filled <- t.filled + 1;
  match t.sink with None -> () | Some f -> f sp

let on_record t f = if t.on then t.sink <- Some f

(* The (layer, op) path of currently-open real spans, outermost first.
   A span's own frame is popped before it is recorded, so from inside a
   sink this is exactly the recorded span's ancestor path.  Virtual
   (wire-context) frames carry no layer and are skipped. *)
let open_frames t =
  if not t.on then []
  else
    List.rev
      (List.filter_map
         (fun fr -> if fr.f_virtual then None else Some (fr.f_layer, fr.f_op))
         t.stack)

let spans t =
  if not t.on then []
  else begin
    let start = if t.filled < t.cap then 0 else t.head in
    List.init t.filled (fun i ->
        match t.ring.((start + i) mod t.cap) with
        | Some sp -> sp
        | None -> assert false)
  end

(* Parentage for a new span or event: the innermost open frame, else a
   fresh trace rooted at 0. *)
let parentage t =
  match t.stack with
  | fr :: _ -> (fr.f_trace, fr.f_id)
  | [] ->
      let id = t.next_trace in
      t.next_trace <- id + 1;
      (id, 0)

let pop t fr =
  match t.stack with
  | top :: rest when top == fr -> t.stack <- rest
  | _ ->
      (* an escape (exception unwound past intermediate frames): drop
         everything down to and including [fr] *)
      let rec strip = function
        | [] -> []
        | top :: rest -> if top == fr then rest else strip rest
      in
      t.stack <- strip t.stack

let finish t fr =
  pop t fr;
  record t
    { sp_trace = fr.f_trace; sp_id = fr.f_id; sp_parent = fr.f_parent;
      sp_layer = fr.f_layer; sp_op = fr.f_op; sp_pnode = fr.f_pnode;
      sp_start_ns = fr.f_start; sp_dur_ns = t.now () - fr.f_start;
      sp_outcome = fr.f_outcome }

let span t ~layer ~op ?(pnode = 0) f =
  if not t.on then f ()
  else begin
    let trace, parent = parentage t in
    let id = t.next_span in
    t.next_span <- id + 1;
    let fr =
      { f_trace = trace; f_id = id; f_parent = parent; f_layer = layer;
        f_op = op; f_pnode = pnode; f_start = t.now (); f_outcome = "ok";
        f_virtual = false }
    in
    t.stack <- fr :: t.stack;
    match f () with
    | v ->
        finish t fr;
        v
    | exception e ->
        finish t fr;
        raise e
  end

let event t ~layer ~op ?(pnode = 0) ~outcome () =
  if t.on then begin
    let trace, parent = parentage t in
    let id = t.next_span in
    t.next_span <- id + 1;
    let ts = t.now () in
    record t
      { sp_trace = trace; sp_id = id; sp_parent = parent; sp_layer = layer;
        sp_op = op; sp_pnode = pnode; sp_start_ns = ts; sp_dur_ns = 0;
        sp_outcome = outcome }
  end

let set_outcome t outcome =
  if t.on then
    let rec go = function
      | [] -> ()
      | fr :: rest -> if fr.f_virtual then go rest else fr.f_outcome <- outcome
    in
    go t.stack

let current t =
  if not t.on then None
  else match t.stack with [] -> None | fr :: _ -> Some (fr.f_trace, fr.f_id)

let with_remote_parent t ~trace ~span:span_id f =
  if (not t.on) || trace = 0 then f ()
  else begin
    let fr =
      { f_trace = trace; f_id = span_id; f_parent = 0; f_layer = "";
        f_op = ""; f_pnode = 0; f_start = 0; f_outcome = ""; f_virtual = true }
    in
    t.stack <- fr :: t.stack;
    match f () with
    | v ->
        pop t fr;
        v
    | exception e ->
        pop t fr;
        raise e
  end

(* --- exporters ------------------------------------------------------------- *)

let name sp = sp.sp_layer ^ "." ^ sp.sp_op

let keep filter sp =
  match filter with
  | None -> true
  | Some prefix ->
      Telemetry.name_under ~prefix sp.sp_layer
      || Telemetry.name_under ~prefix (name sp)

(* Export order: by (start, id).  The ring is already deterministic; the
   sort makes the artifact stable under refactors that only move the
   point of completion, and reads chronologically in Perfetto. *)
let export_spans ?filter t =
  List.sort
    (fun a b ->
      match Int.compare a.sp_start_ns b.sp_start_ns with
      | 0 -> Int.compare a.sp_id b.sp_id
      | c -> c)
    (List.filter (keep filter) (spans t))

(* Fixed-point microseconds from integer ns: deterministic, no float
   formatting in the artifact. *)
let us_of_ns buf ns =
  Buffer.add_string buf (Printf.sprintf "%d.%03d" (ns / 1000) (abs ns mod 1000))

let to_chrome ?filter t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  List.iteri
    (fun i sp ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "{\"name\":\"";
      Buffer.add_string buf (Telemetry.Json.escape (name sp));
      Buffer.add_string buf "\",\"cat\":\"";
      Buffer.add_string buf (Telemetry.Json.escape sp.sp_layer);
      Buffer.add_string buf "\",\"ph\":\"X\",\"ts\":";
      us_of_ns buf sp.sp_start_ns;
      Buffer.add_string buf ",\"dur\":";
      us_of_ns buf sp.sp_dur_ns;
      Buffer.add_string buf ",\"pid\":1,\"tid\":";
      Buffer.add_string buf (string_of_int sp.sp_trace);
      Buffer.add_string buf ",\"args\":{\"trace\":";
      Buffer.add_string buf (string_of_int sp.sp_trace);
      Buffer.add_string buf ",\"span\":";
      Buffer.add_string buf (string_of_int sp.sp_id);
      Buffer.add_string buf ",\"parent\":";
      Buffer.add_string buf (string_of_int sp.sp_parent);
      Buffer.add_string buf ",\"pnode\":";
      Buffer.add_string buf (string_of_int sp.sp_pnode);
      Buffer.add_string buf ",\"outcome\":\"";
      Buffer.add_string buf (Telemetry.Json.escape sp.sp_outcome);
      Buffer.add_string buf "\"}}")
    (export_spans ?filter t);
  Buffer.add_string buf "]}";
  Buffer.contents buf

let to_json ?filter t =
  let module J = Telemetry.Json in
  let sps = export_spans ?filter t in
  let span_json sp =
    J.Obj
      [
        ("trace", J.Int sp.sp_trace);
        ("span", J.Int sp.sp_id);
        ("parent", J.Int sp.sp_parent);
        ("layer", J.Str sp.sp_layer);
        ("op", J.Str sp.sp_op);
        ("pnode", J.Int sp.sp_pnode);
        ("start_ns", J.Int sp.sp_start_ns);
        ("dur_ns", J.Int sp.sp_dur_ns);
        ("outcome", J.Str sp.sp_outcome);
      ]
  in
  J.Obj
    [
      ("schema", J.Str "pvtrace/v1");
      ("count", J.Int (List.length sps));
      ("total", J.Int t.lifetime);
      ("dropped", J.Int (dropped t));
      ("capacity", J.Int (if t.on then t.cap else 0));
      ("spans", J.List (List.map span_json sps));
    ]
