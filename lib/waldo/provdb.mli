(** The provenance database Waldo maintains.

    Holds the provenance graph at (object, version) granularity with the
    indexes the query engine needs: forward and reverse ancestry edges, a
    complete name index (every alias a node was seen under), an inverted
    attribute index with per-attribute cardinalities, a pnode-granular
    ancestry adjacency for transitive-reachability estimates, and a
    per-node resident-version index.  All secondary indexes are
    maintained incrementally by {!add_record}/{!set_file}, so every load
    path (deserialize, merge, compact, archive fault-in) rebuilds them.
    Byte accounting mirrors the paper's Table 3 ([db_bytes] for the
    tables, [index_bytes] for the indexes). *)

module Pnode = Pass_core.Pnode
module Pvalue = Pass_core.Pvalue

type node_kind = File | Virtual

type node = {
  pnode : Pnode.t;
  mutable kind : node_kind;
  mutable node_name : string option;
  mutable max_version : int;
  mutable declared : bool;
      (** Whether some layer announced the object (a Map or Mkobj frame);
          [false] for nodes that exist only because an ancestry record
          referenced them.  The pvcheck cross-layer pass keys on this. *)
  mutable floor : int;
      (** Versions below the floor were compacted into a cold-tier
          archive segment; the hot db holds [floor, max_version].  [0]
          means nothing archived.  Maintained by {!compact},
          {!deserialize} and {!merge_into} — not meant to be set by
          hand. *)
}

type quad = { q_pnode : Pnode.t; q_version : int; q_attr : string; q_value : Pvalue.t }

type t

val create : unit -> t

val set_file : t -> Pnode.t -> name:string -> unit
(** Declare [pnode] to be a file, optionally recording its name. *)

val declare_virtual : t -> Pnode.t -> unit

val add_record : t -> Pnode.t -> version:int -> Pass_core.Record.t -> unit
(** Insert one record attributed to (pnode, version), updating indexes. *)

val find_node : t -> Pnode.t -> node option
val node_count : t -> int
val quad_count : t -> int
val all_nodes : t -> node list

val compare_pv : Pnode.t * int -> Pnode.t * int -> int
(** Typed order on (pnode, version) keys (no polymorphic compare). *)

val find_by_name : t -> string -> Pnode.t list
(** Pnodes ever sighted under [name] — via {!set_file} or a NAME record —
    in pnode order.  A complete superset for name-equality predicates:
    the query planner uses it as an access path and re-checks exact
    semantics afterwards. *)

val name_of : t -> Pnode.t -> string option

val versions : t -> Pnode.t -> int list
(** All version numbers [0..max_version] of [pnode], resident or not.
    The enumeration is memoized per node (rebuilt only when the max
    version grows), so calling this in a loop no longer allocates. *)

val resident_versions : t -> Pnode.t -> int list
(** Ascending versions of [pnode] that hold at least one resident quad —
    the maintained index behind {!records_all}/{!out_edges_all}.  Does
    not fault the archive in. *)

val version_range : t -> Pnode.t -> (int * int) option
(** [(floor, max_version)] of [pnode]: the hot tier holds versions in
    [floor, max_version]; anything below the floor is archived. *)

val records_at : t -> Pnode.t -> version:int -> quad list
val records_all : t -> Pnode.t -> quad list

val out_edges : t -> Pnode.t -> version:int -> (string * Pvalue.xref) list
(** Ancestry edges leaving (pnode, version): attribute and target. *)

val out_edges_all : t -> Pnode.t -> (int * string * Pvalue.xref) list

val in_edges : t -> Pnode.t -> (Pnode.t * int * string * int) list
(** Who refers to [pnode]: (source pnode, source version, attribute,
    referenced version of [pnode]). *)

val with_attr : t -> string -> (Pnode.t * int) list
(** Distinct (pnode, version) pairs holding at least one record whose
    attribute matches [attr] case-insensitively, in {!compare_pv} order.
    Entries are deduplicated at insert and the sorted view is memoized,
    so repeated probes no longer re-sort — and re-ingesting the same
    record (merge, fault-in, replay) no longer duplicates entries. *)

val attr_value : t -> Pnode.t -> version:int -> string -> Pvalue.t option

(** {2 Planner statistics}

    Cardinality inputs for the PQL cost-based planner.  These read the
    hot tier as-is and never fault the archive in: estimates must stay
    side-effect free at prepare time (execution uses the exact accessors
    above, which do fault in). *)

val file_count : t -> int
(** How many nodes are files. *)

val edge_count : t -> int
(** Ancestry records ingested, with multiplicity. *)

val attr_cardinality : t -> string -> int
(** Distinct (pnode, version) entries under [attr] (case-insensitive)
    — the length of {!with_attr}'s result, without building it. *)

val parents_of : t -> Pnode.t -> Pnode.t list
(** Direct ancestry parents at pnode granularity (version collapsed,
    freeze self-edges excluded), in first-sighting order. *)

val children_of : t -> Pnode.t -> Pnode.t list

val reach_ancestors : t -> ?limit:int -> Pnode.t -> Pnode.t list
(** Transitive ancestry reachability over {!parents_of}, excluding the
    start, in BFS order; [limit] caps the number of nodes returned so
    the planner can bound estimation work. *)

val reach_descendants : t -> ?limit:int -> Pnode.t -> Pnode.t list

val serialize : t -> string
(** On-disk image of the node and quad tables (indexes are rebuilt by
    {!deserialize}).  The current format, PROVDB4, appends an
    index-stats footer so a loader can prove its rebuilt indexes agree
    with the writer's. *)

val deserialize : string -> t
(** Loads PROVDB4 images as well as the older PROVDB3/PROVDB2 formats
    (which lack the stats footer); secondary indexes are rebuilt either
    way, so pre-planner images gain the new indexes on load.
    @raise Wire.Corrupt on a malformed image, or when a PROVDB4 footer
    disagrees with the rebuilt indexes. *)

val merge_into : dst:t -> src:t -> unit
(** Merge [src] into [dst], giving the query engine a unified view over
    several volumes (e.g. the Figure 1 scenario's two NFS servers plus
    the local disk).  Version metadata is carried along: [dst] nodes
    take the max of both sides' [max_version] and [floor]. *)

val compact : t -> keep:int -> t * t
(** [compact t ~keep] splits [t] into [(hot, cold)] along the paper's
    frozen-version semantics.  Per node, all but the newest [keep]
    versions move to [cold] (this generation's archive segment); [hot]
    keeps the rest with its floor raised.  Versions below the previous
    floor are never re-emitted — earlier archive segments are
    append-only.  Both outputs carry the full node table. *)

val set_fault_handler : t -> (t -> bool) -> unit
(** Register the archive fault-in handler: called at most once per
    load (guarded by {!cold_loaded}) when a query needs versions below
    some node's floor.  The handler repopulates [t] from the cold tier
    and returns [false] on an IO failure, which re-arms the trigger. *)

val fault_in : t -> unit
(** Explicitly load archived history now (no-op without a handler,
    archived versions, or when already loaded). *)

val cold_loaded : t -> bool
(** Whether archived history has been faulted in. *)

val has_cold : t -> bool
(** Whether any node has a floor above 0 (i.e. an archive exists). *)

val db_bytes : t -> int
val index_bytes : t -> int
val total_bytes : t -> int

val is_acyclic : t -> bool
(** DESIGN.md invariant 1: the stored graph is a DAG at version
    granularity. *)

val ancestors : t -> Pnode.t -> version:int -> (Pnode.t * int) list
(** Transitive ancestor closure over ancestry edges (what [input*]
    walks). *)

val verify_indexes : t -> (unit, string) result
(** Rebuild-and-compare self-check: round-trips the db through its
    on-disk form (which reconstructs every secondary index from the quad
    store alone) and diffs each maintained index — names, attr postings
    and cardinalities, ancestry adjacency, resident versions, version
    ranges, counters — against the live one.  [Error msg] names the
    first drift found.  Faults the archive in first so the comparison
    covers the whole history. *)
