(** The provenance database Waldo maintains.

    Holds the provenance graph at (object, version) granularity with the
    indexes the query engine needs: forward and reverse ancestry edges, a
    name index and an attribute index.  Byte accounting mirrors the
    paper's Table 3 ([db_bytes] for the tables, [index_bytes] for the
    indexes). *)

module Pnode = Pass_core.Pnode
module Pvalue = Pass_core.Pvalue

type node_kind = File | Virtual

type node = {
  pnode : Pnode.t;
  mutable kind : node_kind;
  mutable node_name : string option;
  mutable max_version : int;
  mutable declared : bool;
      (** Whether some layer announced the object (a Map or Mkobj frame);
          [false] for nodes that exist only because an ancestry record
          referenced them.  The pvcheck cross-layer pass keys on this. *)
  mutable floor : int;
      (** Versions below the floor were compacted into a cold-tier
          archive segment; the hot db holds [floor, max_version].  [0]
          means nothing archived.  Maintained by {!compact},
          {!deserialize} and {!merge_into} — not meant to be set by
          hand. *)
}

type quad = { q_pnode : Pnode.t; q_version : int; q_attr : string; q_value : Pvalue.t }

type t

val create : unit -> t

val set_file : t -> Pnode.t -> name:string -> unit
(** Declare [pnode] to be a file, optionally recording its name. *)

val declare_virtual : t -> Pnode.t -> unit

val add_record : t -> Pnode.t -> version:int -> Pass_core.Record.t -> unit
(** Insert one record attributed to (pnode, version), updating indexes. *)

val find_node : t -> Pnode.t -> node option
val node_count : t -> int
val quad_count : t -> int
val all_nodes : t -> node list

val compare_pv : Pnode.t * int -> Pnode.t * int -> int
(** Typed order on (pnode, version) keys (no polymorphic compare). *)

val find_by_name : t -> string -> Pnode.t list
val name_of : t -> Pnode.t -> string option
val versions : t -> Pnode.t -> int list

val records_at : t -> Pnode.t -> version:int -> quad list
val records_all : t -> Pnode.t -> quad list

val out_edges : t -> Pnode.t -> version:int -> (string * Pvalue.xref) list
(** Ancestry edges leaving (pnode, version): attribute and target. *)

val out_edges_all : t -> Pnode.t -> (int * string * Pvalue.xref) list

val in_edges : t -> Pnode.t -> (Pnode.t * int * string * int) list
(** Who refers to [pnode]: (source pnode, source version, attribute,
    referenced version of [pnode]). *)

val with_attr : t -> string -> (Pnode.t * int) list
val attr_value : t -> Pnode.t -> version:int -> string -> Pvalue.t option

val serialize : t -> string
(** On-disk image of the node and quad tables (indexes are rebuilt by
    {!deserialize}). *)

val deserialize : string -> t
(** @raise Wire.Corrupt on a malformed image. *)

val merge_into : dst:t -> src:t -> unit
(** Merge [src] into [dst], giving the query engine a unified view over
    several volumes (e.g. the Figure 1 scenario's two NFS servers plus
    the local disk).  Version metadata is carried along: [dst] nodes
    take the max of both sides' [max_version] and [floor]. *)

val compact : t -> keep:int -> t * t
(** [compact t ~keep] splits [t] into [(hot, cold)] along the paper's
    frozen-version semantics.  Per node, all but the newest [keep]
    versions move to [cold] (this generation's archive segment); [hot]
    keeps the rest with its floor raised.  Versions below the previous
    floor are never re-emitted — earlier archive segments are
    append-only.  Both outputs carry the full node table. *)

val set_fault_handler : t -> (t -> bool) -> unit
(** Register the archive fault-in handler: called at most once per
    load (guarded by {!cold_loaded}) when a query needs versions below
    some node's floor.  The handler repopulates [t] from the cold tier
    and returns [false] on an IO failure, which re-arms the trigger. *)

val fault_in : t -> unit
(** Explicitly load archived history now (no-op without a handler,
    archived versions, or when already loaded). *)

val cold_loaded : t -> bool
(** Whether archived history has been faulted in. *)

val has_cold : t -> bool
(** Whether any node has a floor above 0 (i.e. an archive exists). *)

val db_bytes : t -> int
val index_bytes : t -> int
val total_bytes : t -> int

val is_acyclic : t -> bool
(** DESIGN.md invariant 1: the stored graph is a DAG at version
    granularity. *)

val ancestors : t -> Pnode.t -> version:int -> (Pnode.t * int) list
(** Transitive ancestor closure over ancestry edges (what [input*]
    walks). *)
