(** Cold-tier provenance archive.

    Compaction moves expired versions into append-only, digest-framed
    archive segments named by the checkpoint MANIFEST.  This module
    loads them back — either eagerly ({!load_into}, used by fsck) or
    lazily on first sub-floor query ({!install_handler}, used by the
    query path). *)

val load_into :
  ?registry:Telemetry.registry ->
  Vfs.ops ->
  dir:string ->
  segments:(string * string) list ->
  Provdb.t ->
  (unit, Vfs.errno) result
(** Read, digest-verify and merge every [(name, digest)] segment under
    [dir] into the db, oldest first.  A digest mismatch against the
    manifest's record is [EIO]. *)

val install_handler :
  ?registry:Telemetry.registry ->
  Vfs.ops ->
  dir:string ->
  segments:(string * string) list ->
  Provdb.t ->
  unit
(** Arm the db to fault the listed segments in on the first query that
    needs versions below a node's floor.  No-op when [segments] is
    empty.  Instruments [waldo.archive_fault_ins],
    [waldo.archive_segments_loaded] and [waldo.archive_load_errors]. *)
