(* Cold-tier provenance archive (DESIGN §13).

   Compaction moves expired versions out of the hot provdb into
   append-only archive segments — each a digest-framed provdb image
   holding one generation's newly-expired version range, named by the
   checkpoint MANIFEST.  Queries that never dip below a node's floor run
   entirely hot; the first one that does faults every listed segment
   back in through {!Provdb.set_fault_handler}, after which the db
   answers exactly as if it had never been compacted. *)

let ( let* ) = Result.bind

let counter ?registry name = Telemetry.counter ?registry ("waldo." ^ name)

(* Read, verify and merge every archive segment into [dst].  A segment
   whose payload digest disagrees with the digest the manifest recorded
   is treated as corrupt (EIO), same as a torn frame. *)
let load_into ?registry lower ~dir ~segments dst =
  let loaded = counter ?registry "archive_segments_loaded" in
  List.fold_left
    (fun acc (name, digest) ->
      let* () = acc in
      let* payload, stored = Checkpoint.read_verified lower ~path:(dir ^ "/" ^ name) in
      if not (String.equal stored digest) then Error Vfs.EIO
      else
        match Provdb.deserialize payload with
        | cold ->
            Provdb.merge_into ~dst ~src:cold;
            Telemetry.incr loaded;
            Ok ()
        | exception Wire.Corrupt _ -> Error Vfs.EIO)
    (Ok ()) segments

(* Arm [db] to fault the archive in on demand.  The handler loads ALL
   segments in manifest order (oldest first) so version ranges land in
   ingest order; Provdb's cold_loaded flag guarantees it runs at most
   once per successful load. *)
let install_handler ?registry lower ~dir ~segments db =
  if segments <> [] then begin
    let fault_ins = counter ?registry "archive_fault_ins" in
    let load_errors = counter ?registry "archive_load_errors" in
    Provdb.set_fault_handler db (fun dst ->
        Telemetry.incr fault_ins;
        match load_into ?registry lower ~dir ~segments dst with
        | Ok () -> true
        | Error e ->
            Telemetry.incr load_errors;
            Logs.warn (fun m ->
                m "waldo: archive fault-in failed: %s" (Vfs.errno_to_string e));
            false)
  end
