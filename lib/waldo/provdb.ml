(* The provenance database Waldo maintains (paper §5.6).

   PASSv1 wrote provenance directly into databases; PASSv2 writes a log
   that Waldo later moves into a database and indexes.  The database holds
   the provenance graph at (object, version) granularity:

   - a node table: pnode -> kind, latest known name, known versions;
   - a quad store: (pnode, version, attribute, value);
   - a forward edge index: (pnode, version) -> ancestry cross-references;
   - a reverse edge index: pnode -> who refers to it;
   - a name index: name -> pnodes;
   - an attribute index: attribute -> (pnode, version) occurrences.

   Byte accounting mirrors Table 3: [db_bytes] is the encoded size of the
   node and quad tables, [index_bytes] the encoded size of the indexes. *)

module Pnode = Pass_core.Pnode
module Pvalue = Pass_core.Pvalue
module Record = Pass_core.Record

type node_kind = File | Virtual

type node = {
  pnode : Pnode.t;
  mutable kind : node_kind;
  mutable node_name : string option;
  mutable max_version : int;
  mutable declared : bool;
      (* true when some layer announced the object (a Map or Mkobj frame,
         via set_file/declare_virtual); false for nodes that exist only
         because an ancestry record referenced them.  pvcheck's
         cross-layer pass keys on this: a referenced-but-never-declared
         object is a dangling identity. *)
}

type quad = { q_pnode : Pnode.t; q_version : int; q_attr : string; q_value : Pvalue.t }

type t = {
  nodes : (Pnode.t, node) Hashtbl.t;
  quads : (Pnode.t * int, quad list ref) Hashtbl.t; (* newest first *)
  fwd : (Pnode.t * int, (string * Pvalue.xref) list ref) Hashtbl.t;
  rev : (Pnode.t, (Pnode.t * int * string * int) list ref) Hashtbl.t;
  names : (string, Pnode.t list ref) Hashtbl.t;
  attr_index : (string, (Pnode.t * int) list ref) Hashtbl.t;
  mutable quad_count : int;
  mutable db_bytes : int;
  mutable index_bytes : int;
}

let create () =
  {
    nodes = Hashtbl.create 4096;
    quads = Hashtbl.create 8192;
    fwd = Hashtbl.create 8192;
    rev = Hashtbl.create 8192;
    names = Hashtbl.create 1024;
    attr_index = Hashtbl.create 64;
    quad_count = 0;
    db_bytes = 0;
    index_bytes = 0;
  }

let multi_add tbl key v =
  match Hashtbl.find_opt tbl key with
  | Some l -> l := v :: !l
  | None -> Hashtbl.add tbl key (ref [ v ])

let node t pnode =
  match Hashtbl.find_opt t.nodes pnode with
  | Some n -> n
  | None ->
      let n = { pnode; kind = Virtual; node_name = None; max_version = 0; declared = false } in
      Hashtbl.add t.nodes pnode n;
      t.db_bytes <- t.db_bytes + 24;
      n

let set_file t pnode ~name =
  let n = node t pnode in
  n.kind <- File;
  n.declared <- true;
  if name <> "" then begin
    (match n.node_name with
    | Some old when old <> name -> ()
    | Some _ -> ()
    | None -> t.index_bytes <- t.index_bytes + String.length name + 12);
    n.node_name <- Some name;
    multi_add t.names name pnode;
    t.db_bytes <- t.db_bytes + String.length name
  end

let declare_virtual t pnode =
  let n = node t pnode in
  n.declared <- true

let encoded_record_size record =
  let buf = Buffer.create 32 in
  Record.encode buf record;
  Buffer.length buf

(* Insert one record attributed to (pnode, version). *)
let add_record t pnode ~version (record : Record.t) =
  let n = node t pnode in
  if version > n.max_version then n.max_version <- version;
  let q = { q_pnode = pnode; q_version = version; q_attr = record.attr; q_value = record.value } in
  multi_add t.quads (pnode, version) q;
  t.quad_count <- t.quad_count + 1;
  let sz = encoded_record_size record in
  t.db_bytes <- t.db_bytes + sz + 16;
  t.index_bytes <- t.index_bytes + 20 (* attr index entry *);
  multi_add t.attr_index record.attr (pnode, version);
  (match record.value with
  | Pvalue.Xref x when Record.is_ancestry record ->
      multi_add t.fwd (pnode, version) (record.attr, x);
      multi_add t.rev x.pnode (pnode, version, record.attr, x.version);
      let _ : node = node t x.pnode in
      t.index_bytes <- t.index_bytes + 40 (* fwd + rev entries *)
  | Pvalue.Str s when String.equal record.attr Record.Attr.name ->
      let n = node t pnode in
      if n.node_name = None then begin
        n.node_name <- Some s;
        multi_add t.names s pnode;
        t.index_bytes <- t.index_bytes + String.length s + 12
      end
  | _ -> ())

(* --- query access -------------------------------------------------------- *)

let find_node t pnode = Hashtbl.find_opt t.nodes pnode
let node_count t = Hashtbl.length t.nodes
let quad_count t = t.quad_count

let all_nodes t = Hashtbl.fold (fun _ n acc -> n :: acc) t.nodes []

let find_by_name t name =
  match Hashtbl.find_opt t.names name with
  | Some l -> List.sort_uniq Pnode.compare !l
  | None -> []

(* Typed order on (pnode, version) keys — the attr index and pvcheck sort
   with this instead of polymorphic compare. *)
let compare_pv (p, v) (p', v') =
  match Pnode.compare p p' with 0 -> Int.compare v v' | c -> c

let name_of t pnode = Option.bind (find_node t pnode) (fun n -> n.node_name)

let versions t pnode =
  match find_node t pnode with
  | None -> []
  | Some n -> List.init (n.max_version + 1) Fun.id

let records_at t pnode ~version =
  match Hashtbl.find_opt t.quads (pnode, version) with
  | Some l -> List.rev !l
  | None -> []

let records_all t pnode =
  List.concat_map (fun v -> records_at t pnode ~version:v) (versions t pnode)

let out_edges t pnode ~version =
  match Hashtbl.find_opt t.fwd (pnode, version) with Some l -> List.rev !l | None -> []

let out_edges_all t pnode =
  List.concat_map
    (fun v -> List.map (fun (a, x) -> (v, a, x)) (out_edges t pnode ~version:v))
    (versions t pnode)

let in_edges t pnode =
  match Hashtbl.find_opt t.rev pnode with Some l -> List.rev !l | None -> []

let with_attr t attr =
  match Hashtbl.find_opt t.attr_index attr with
  | Some l -> List.sort_uniq compare_pv !l
  | None -> []

let attr_value t pnode ~version attr =
  List.find_map
    (fun (q : quad) -> if String.equal q.q_attr attr then Some q.q_value else None)
    (records_at t pnode ~version)

let db_bytes t = t.db_bytes
let index_bytes t = t.index_bytes
let total_bytes t = t.db_bytes + t.index_bytes

(* Merge [src] into [dst]: used by the query engine to get a unified view
   over several volumes' databases (e.g. two NFS servers plus the local
   disk in the Figure 1 scenario). *)
let merge_into ~dst ~src =
  Hashtbl.iter
    (fun _ (n : node) ->
      (match (n.kind, n.declared) with
      | File, _ -> set_file dst n.pnode ~name:(Option.value n.node_name ~default:"")
      | Virtual, true -> declare_virtual dst n.pnode
      | Virtual, false ->
          (* an undeclared stub stays a stub: merging must not launder a
             dangling reference into a declared identity *)
          let _ : node = node dst n.pnode in
          ());
      match n.node_name with
      | Some nm when n.kind = Virtual ->
          (* preserve names of virtual objects too *)
          let d = node dst n.pnode in
          if d.node_name = None then begin
            d.node_name <- Some nm;
            multi_add dst.names nm n.pnode
          end
      | _ -> ())
    src.nodes;
  Hashtbl.iter
    (fun (pnode, version) quads ->
      List.iter
        (fun (q : quad) -> add_record dst pnode ~version { attr = q.q_attr; value = q.q_value })
        (List.rev !quads))
    src.quads

(* --- on-disk form ---------------------------------------------------------- *)

(* Serialize the node and quad tables (indexes are rebuilt on load, since
   add_record maintains them).  Deterministic order so persisted images
   are stable. *)
let serialize t =
  let buf = Buffer.create 65536 in
  Wire.put_string buf "PROVDB2";
  let nodes = List.sort (fun a b -> Pnode.compare a.pnode b.pnode) (all_nodes t) in
  Wire.put_u32 buf (List.length nodes);
  List.iter
    (fun n ->
      Wire.put_i64 buf (Pnode.to_int n.pnode);
      (* kind byte: 1 = file, 2 = declared virtual, 0 = undeclared stub *)
      Wire.put_u8 buf (match (n.kind, n.declared) with
        | File, _ -> 1
        | Virtual, true -> 2
        | Virtual, false -> 0);
      Wire.put_string buf (Option.value n.node_name ~default:"");
      Wire.put_i64 buf n.max_version)
    nodes;
  let quads =
    List.concat_map
      (fun n ->
        List.concat_map (fun v -> records_at t n.pnode ~version:v) (versions t n.pnode))
      nodes
  in
  Wire.put_u32 buf (List.length quads);
  List.iter
    (fun q ->
      Wire.put_i64 buf (Pnode.to_int q.q_pnode);
      Wire.put_i64 buf q.q_version;
      Record.encode buf { Record.attr = q.q_attr; value = q.q_value })
    quads;
  Buffer.contents buf

let deserialize image =
  let pos = ref 0 in
  if not (String.equal (Wire.get_string image pos) "PROVDB2") then
    Wire.corrupt "provdb: bad magic";
  let t = create () in
  let n_nodes = Wire.get_u32 image pos in
  for _ = 1 to n_nodes do
    let pnode = Pnode.of_int (Wire.get_i64 image pos) in
    let kind = Wire.get_u8 image pos in
    let name = Wire.get_string image pos in
    let _maxv = Wire.get_i64 image pos in
    (match kind with
    | 1 -> set_file t pnode ~name
    | 2 ->
        declare_virtual t pnode;
        (* virtual objects can carry names too (merge gives them one) *)
        if name <> "" then begin
          let n = node t pnode in
          if n.node_name = None then begin
            n.node_name <- Some name;
            multi_add t.names name pnode
          end
        end
    | _ ->
        let _ : node = node t pnode in
        ())
  done;
  let n_quads = Wire.get_u32 image pos in
  for _ = 1 to n_quads do
    let pnode = Pnode.of_int (Wire.get_i64 image pos) in
    let version = Wire.get_i64 image pos in
    let record = Record.decode image pos in
    add_record t pnode ~version record
  done;
  t

(* --- integrity ----------------------------------------------------------- *)

(* Acyclicity at (pnode, version) granularity — DESIGN.md invariant 1. *)
let is_acyclic t =
  let color : (Pnode.t * int, int) Hashtbl.t = Hashtbl.create 1024 in
  let rec dfs key =
    match Hashtbl.find_opt color key with
    | Some 1 -> false
    | Some _ -> true
    | None ->
        Hashtbl.replace color key 1;
        let pnode, version = key in
        let ok =
          List.for_all
            (fun (_, (x : Pvalue.xref)) -> dfs (x.pnode, x.version))
            (out_edges t pnode ~version)
        in
        Hashtbl.replace color key 2;
        ok
  in
  Hashtbl.fold (fun key _ acc -> acc && dfs key) t.fwd true

(* Transitive ancestor closure of (pnode, version): every (pnode, version)
   reachable over ancestry edges, *including* earlier versions linked by
   freeze records.  This is what `input*` ultimately walks. *)
let ancestors t pnode ~version =
  let seen = Hashtbl.create 64 in
  let rec go key =
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      let p, v = key in
      List.iter (fun (_, (x : Pvalue.xref)) -> go (x.pnode, x.version)) (out_edges t p ~version:v)
    end
  in
  go (pnode, version);
  Hashtbl.remove seen (pnode, version);
  Hashtbl.fold (fun k () acc -> k :: acc) seen []
