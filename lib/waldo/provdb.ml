(* The provenance database Waldo maintains (paper §5.6).

   PASSv1 wrote provenance directly into databases; PASSv2 writes a log
   that Waldo later moves into a database and indexes.  The database holds
   the provenance graph at (object, version) granularity:

   - a node table: pnode -> kind, latest known name, known versions;
   - a quad store: (pnode, version, attribute, value);
   - a forward edge index: (pnode, version) -> ancestry cross-references;
   - a reverse edge index: pnode -> who refers to it;
   - a name index: name -> pnodes;
   - an attribute index: attribute -> (pnode, version) occurrences.

   Byte accounting mirrors Table 3: [db_bytes] is the encoded size of the
   node and quad tables, [index_bytes] the encoded size of the indexes. *)

module Pnode = Pass_core.Pnode
module Pvalue = Pass_core.Pvalue
module Record = Pass_core.Record

type node_kind = File | Virtual

type node = {
  pnode : Pnode.t;
  mutable kind : node_kind;
  mutable node_name : string option;
  mutable max_version : int;
  mutable declared : bool;
      (* true when some layer announced the object (a Map or Mkobj frame,
         via set_file/declare_virtual); false for nodes that exist only
         because an ancestry record referenced them.  pvcheck's
         cross-layer pass keys on this: a referenced-but-never-declared
         object is a dangling identity. *)
  mutable floor : int;
      (* versions below the floor were compacted into a cold-tier archive
         segment; the hot db holds [floor, max_version].  0 = nothing
         archived.  Queries that dip below a floor fault the archive in
         through the registered handler. *)
}

type quad = { q_pnode : Pnode.t; q_version : int; q_attr : string; q_value : Pvalue.t }

type t = {
  nodes : (Pnode.t, node) Hashtbl.t;
  quads : (Pnode.t * int, quad list ref) Hashtbl.t; (* newest first *)
  fwd : (Pnode.t * int, (string * Pvalue.xref) list ref) Hashtbl.t;
  rev : (Pnode.t, (Pnode.t * int * string * int) list ref) Hashtbl.t;
  names : (string, Pnode.t list ref) Hashtbl.t;
  attr_index : (string, (Pnode.t * int) list ref) Hashtbl.t;
  mutable quad_count : int;
  mutable db_bytes : int;
  mutable index_bytes : int;
  mutable floored : int;  (* how many nodes have floor > 0 *)
  mutable cold_loaded : bool;  (* archive history already faulted in *)
  mutable fault_handler : fault_handler option;
}

and fault_handler = t -> bool
(* Loads archived history into the db (via add_record/merge_into);
   returns false on an IO failure so the fault-in can be retried. *)

let create () =
  {
    nodes = Hashtbl.create 4096;
    quads = Hashtbl.create 8192;
    fwd = Hashtbl.create 8192;
    rev = Hashtbl.create 8192;
    names = Hashtbl.create 1024;
    attr_index = Hashtbl.create 64;
    quad_count = 0;
    db_bytes = 0;
    index_bytes = 0;
    floored = 0;
    cold_loaded = false;
    fault_handler = None;
  }

let multi_add tbl key v =
  match Hashtbl.find_opt tbl key with
  | Some l -> l := v :: !l
  | None -> Hashtbl.add tbl key (ref [ v ])

let node t pnode =
  match Hashtbl.find_opt t.nodes pnode with
  | Some n -> n
  | None ->
      let n =
        { pnode; kind = Virtual; node_name = None; max_version = 0; declared = false; floor = 0 }
      in
      Hashtbl.add t.nodes pnode n;
      t.db_bytes <- t.db_bytes + 24;
      n

let set_file t pnode ~name =
  let n = node t pnode in
  n.kind <- File;
  n.declared <- true;
  if name <> "" then begin
    (match n.node_name with
    | Some old when old <> name -> ()
    | Some _ -> ()
    | None -> t.index_bytes <- t.index_bytes + String.length name + 12);
    n.node_name <- Some name;
    multi_add t.names name pnode;
    t.db_bytes <- t.db_bytes + String.length name
  end

let declare_virtual t pnode =
  let n = node t pnode in
  n.declared <- true

let encoded_record_size record =
  let buf = Buffer.create 32 in
  Record.encode buf record;
  Buffer.length buf

(* Insert one record attributed to (pnode, version). *)
let add_record t pnode ~version (record : Record.t) =
  let n = node t pnode in
  if version > n.max_version then n.max_version <- version;
  let q = { q_pnode = pnode; q_version = version; q_attr = record.attr; q_value = record.value } in
  multi_add t.quads (pnode, version) q;
  t.quad_count <- t.quad_count + 1;
  let sz = encoded_record_size record in
  t.db_bytes <- t.db_bytes + sz + 16;
  t.index_bytes <- t.index_bytes + 20 (* attr index entry *);
  multi_add t.attr_index record.attr (pnode, version);
  (match record.value with
  | Pvalue.Xref x when Record.is_ancestry record ->
      multi_add t.fwd (pnode, version) (record.attr, x);
      multi_add t.rev x.pnode (pnode, version, record.attr, x.version);
      let _ : node = node t x.pnode in
      t.index_bytes <- t.index_bytes + 40 (* fwd + rev entries *)
  | Pvalue.Str s when String.equal record.attr Record.Attr.name ->
      let n = node t pnode in
      if n.node_name = None then begin
        n.node_name <- Some s;
        multi_add t.names s pnode;
        t.index_bytes <- t.index_bytes + String.length s + 12
      end
  | _ -> ())

(* --- cold-tier fault-in --------------------------------------------------- *)

(* Floors are only ever set through this so [floored] stays in sync. *)
let set_floor t (n : node) f =
  if n.floor = 0 && f > 0 then t.floored <- t.floored + 1
  else if n.floor > 0 && f = 0 then t.floored <- t.floored - 1;
  n.floor <- f

let set_fault_handler t f = t.fault_handler <- Some f
let cold_loaded t = t.cold_loaded
let has_cold t = t.floored > 0

(* Load archived history on first demand.  [cold_loaded] is set before
   the handler runs: the handler repopulates the db with add_record /
   merge_into, which never read back through the triggering accessors,
   and the flag keeps a recursive trigger from looping.  Floors are NOT
   cleared — they still describe which versions live in which tier —
   so the flag is the only re-trigger gate; on handler failure it is
   reset so a later query retries the IO. *)
let maybe_fault_in t =
  match t.fault_handler with
  | Some f when (not t.cold_loaded) && t.floored > 0 ->
      t.cold_loaded <- true;
      if not (f t) then t.cold_loaded <- false
  | _ -> ()

let fault_in t = maybe_fault_in t

(* --- query access -------------------------------------------------------- *)

let find_node t pnode = Hashtbl.find_opt t.nodes pnode
let node_count t = Hashtbl.length t.nodes
let quad_count t = t.quad_count

let all_nodes t = Hashtbl.fold (fun _ n acc -> n :: acc) t.nodes []

let find_by_name t name =
  match Hashtbl.find_opt t.names name with
  | Some l -> List.sort_uniq Pnode.compare !l
  | None -> []

(* Typed order on (pnode, version) keys — the attr index and pvcheck sort
   with this instead of polymorphic compare. *)
let compare_pv (p, v) (p', v') =
  match Pnode.compare p p' with 0 -> Int.compare v v' | c -> c

let name_of t pnode = Option.bind (find_node t pnode) (fun n -> n.node_name)

let versions t pnode =
  match find_node t pnode with
  | None -> []
  | Some n -> List.init (n.max_version + 1) Fun.id

(* Raw accessors see only what is resident — serialize and compact use
   them so snapshotting the hot tier never faults the archive in. *)
let records_at_raw t pnode ~version =
  match Hashtbl.find_opt t.quads (pnode, version) with
  | Some l -> List.rev !l
  | None -> []

let out_edges_raw t pnode ~version =
  match Hashtbl.find_opt t.fwd (pnode, version) with Some l -> List.rev !l | None -> []

(* A query for a version below the node's floor needs archived history. *)
let below_floor t pnode version =
  match Hashtbl.find_opt t.nodes pnode with
  | Some n -> version < n.floor
  | None -> false

let records_at t pnode ~version =
  if below_floor t pnode version then maybe_fault_in t;
  records_at_raw t pnode ~version

let records_all t pnode =
  List.concat_map (fun v -> records_at t pnode ~version:v) (versions t pnode)

let out_edges t pnode ~version =
  if below_floor t pnode version then maybe_fault_in t;
  out_edges_raw t pnode ~version

let out_edges_all t pnode =
  List.concat_map
    (fun v -> List.map (fun (a, x) -> (v, a, x)) (out_edges t pnode ~version:v))
    (versions t pnode)

let in_edges t pnode =
  (* reverse edges into [pnode] can originate from any node's archived
     versions, so the presence of any floor is reason to fault in *)
  if t.floored > 0 then maybe_fault_in t;
  match Hashtbl.find_opt t.rev pnode with Some l -> List.rev !l | None -> []

let with_attr t attr =
  if t.floored > 0 then maybe_fault_in t;
  match Hashtbl.find_opt t.attr_index attr with
  | Some l -> List.sort_uniq compare_pv !l
  | None -> []

let attr_value t pnode ~version attr =
  List.find_map
    (fun (q : quad) -> if String.equal q.q_attr attr then Some q.q_value else None)
    (records_at t pnode ~version)

let db_bytes t = t.db_bytes
let index_bytes t = t.index_bytes
let total_bytes t = t.db_bytes + t.index_bytes

(* Merge [src] into [dst]: used by the query engine to get a unified view
   over several volumes' databases (e.g. two NFS servers plus the local
   disk in the Figure 1 scenario). *)
let merge_into ~dst ~src =
  Hashtbl.iter
    (fun _ (n : node) ->
      (match (n.kind, n.declared) with
      | File, _ -> set_file dst n.pnode ~name:(Option.value n.node_name ~default:"")
      | Virtual, true -> declare_virtual dst n.pnode
      | Virtual, false ->
          (* an undeclared stub stays a stub: merging must not launder a
             dangling reference into a declared identity *)
          let _ : node = node dst n.pnode in
          ());
      (match n.node_name with
      | Some nm when n.kind = Virtual ->
          (* preserve names of virtual objects too *)
          let d = node dst n.pnode in
          if d.node_name = None then begin
            d.node_name <- Some nm;
            multi_add dst.names nm n.pnode
          end
      | _ -> ());
      (* carry version metadata: the max known version can exceed the
         highest resident quad (empty versions), and the archive floor
         must survive a merge-based load *)
      let d = node dst n.pnode in
      if n.max_version > d.max_version then d.max_version <- n.max_version;
      if n.floor > d.floor then set_floor dst d n.floor)
    src.nodes;
  Hashtbl.iter
    (fun (pnode, version) quads ->
      List.iter
        (fun (q : quad) -> add_record dst pnode ~version { attr = q.q_attr; value = q.q_value })
        (List.rev !quads))
    src.quads

(* --- on-disk form ---------------------------------------------------------- *)

(* Serialize the node and quad tables (indexes are rebuilt on load, since
   add_record maintains them).  Deterministic order so persisted images
   are stable.  Only resident quads are written (raw accessors), so the
   hot tier snapshots without faulting the archive in.  Quad bytes are a
   pure function of which versions are resident — each version's quads
   live wholly in one tier and keep their ingest order — so two dbs that
   went through the same compaction history serialize identically no
   matter how they got there (replay, image load, fault-in). *)
let serialize t =
  let buf = Buffer.create 65536 in
  Wire.put_string buf "PROVDB3";
  let nodes = List.sort (fun a b -> Pnode.compare a.pnode b.pnode) (all_nodes t) in
  Wire.put_u32 buf (List.length nodes);
  List.iter
    (fun n ->
      Wire.put_i64 buf (Pnode.to_int n.pnode);
      (* kind byte: 1 = file, 2 = declared virtual, 0 = undeclared stub *)
      Wire.put_u8 buf (match (n.kind, n.declared) with
        | File, _ -> 1
        | Virtual, true -> 2
        | Virtual, false -> 0);
      Wire.put_string buf (Option.value n.node_name ~default:"");
      Wire.put_i64 buf n.max_version;
      Wire.put_i64 buf n.floor)
    nodes;
  let quads =
    List.concat_map
      (fun n ->
        List.concat_map
          (fun v -> records_at_raw t n.pnode ~version:v)
          (List.init (n.max_version + 1) Fun.id))
      nodes
  in
  Wire.put_u32 buf (List.length quads);
  List.iter
    (fun q ->
      Wire.put_i64 buf (Pnode.to_int q.q_pnode);
      Wire.put_i64 buf q.q_version;
      Record.encode buf { Record.attr = q.q_attr; value = q.q_value })
    quads;
  Buffer.contents buf

let deserialize image =
  let pos = ref 0 in
  let version =
    match Wire.get_string image pos with
    | "PROVDB3" -> 3
    | "PROVDB2" -> 2 (* pre-floor images, still loadable *)
    | _ -> Wire.corrupt "provdb: bad magic"
  in
  let t = create () in
  let n_nodes = Wire.get_u32 image pos in
  for _ = 1 to n_nodes do
    let pnode = Pnode.of_int (Wire.get_i64 image pos) in
    let kind = Wire.get_u8 image pos in
    let name = Wire.get_string image pos in
    let maxv = Wire.get_i64 image pos in
    let floor = if version >= 3 then Wire.get_i64 image pos else 0 in
    (match kind with
    | 1 -> set_file t pnode ~name
    | 2 ->
        declare_virtual t pnode;
        (* virtual objects can carry names too (merge gives them one) *)
        if name <> "" then begin
          let n = node t pnode in
          if n.node_name = None then begin
            n.node_name <- Some name;
            multi_add t.names name pnode
          end
        end
    | _ ->
        let _ : node = node t pnode in
        ());
    (* honour stored version metadata: a compacted image's floor, and a
       max_version that may exceed the highest resident quad *)
    let n = node t pnode in
    if maxv > n.max_version then n.max_version <- maxv;
    if floor > 0 then set_floor t n floor
  done;
  let n_quads = Wire.get_u32 image pos in
  for _ = 1 to n_quads do
    let pnode = Pnode.of_int (Wire.get_i64 image pos) in
    let version = Wire.get_i64 image pos in
    let record = Record.decode image pos in
    add_record t pnode ~version record
  done;
  t

(* --- version compaction ---------------------------------------------------- *)

(* Split [t] into a hot db and a cold db along the paper's frozen-version
   semantics: a version below the latest is frozen (immutable), so all
   but the newest [keep] versions of each node can move to the cold
   tier.  Per node the cutoff is [max floor (max_version - keep + 1)]:

   - versions in [floor, cutoff) — newly expired — go to the cold db,
     which becomes this generation's archive segment;
   - versions below the old floor are NOT re-emitted even when they are
     resident (faulted in): they already live in earlier segments, which
     are append-only;
   - the hot db keeps [cutoff, max_version] with its floor raised to the
     cutoff.

   Both outputs carry the full node table (node entries are a few dozen
   bytes; quads and edges are the bulk), so the hot tier can answer
   existence/name/version queries without touching the archive. *)
let compact t ~keep =
  let keep = max 1 keep in
  let hot = create () and cold = create () in
  let nodes = List.sort (fun a b -> Pnode.compare a.pnode b.pnode) (all_nodes t) in
  let copy_node dst (n : node) =
    (match (n.kind, n.declared) with
    | File, _ -> set_file dst n.pnode ~name:(Option.value n.node_name ~default:"")
    | Virtual, true -> declare_virtual dst n.pnode
    | Virtual, false ->
        let _ : node = node dst n.pnode in
        ());
    (match n.node_name with
    | Some nm when n.kind = Virtual ->
        let d = node dst n.pnode in
        if d.node_name = None then begin
          d.node_name <- Some nm;
          multi_add dst.names nm n.pnode
        end
    | _ -> ());
    let d = node dst n.pnode in
    if n.max_version > d.max_version then d.max_version <- n.max_version
  in
  (* node tables first so add_record below finds fully-described nodes *)
  List.iter
    (fun n ->
      copy_node hot n;
      copy_node cold n)
    nodes;
  List.iter
    (fun (n : node) ->
      let cutoff = max n.floor (max 0 (n.max_version - keep + 1)) in
      for v = n.floor to n.max_version do
        let dst = if v < cutoff then cold else hot in
        List.iter
          (fun (q : quad) ->
            add_record dst q.q_pnode ~version:v { Record.attr = q.q_attr; value = q.q_value })
          (records_at_raw t n.pnode ~version:v)
      done;
      let hn = node hot n.pnode in
      set_floor hot hn cutoff;
      (* the cold db records the segment's base so it is self-describing *)
      let cn = node cold n.pnode in
      set_floor cold cn n.floor)
    nodes;
  (hot, cold)

(* --- integrity ----------------------------------------------------------- *)

(* Acyclicity at (pnode, version) granularity — DESIGN.md invariant 1. *)
let is_acyclic t =
  let color : (Pnode.t * int, int) Hashtbl.t = Hashtbl.create 1024 in
  let rec dfs key =
    match Hashtbl.find_opt color key with
    | Some 1 -> false
    | Some _ -> true
    | None ->
        Hashtbl.replace color key 1;
        let pnode, version = key in
        let ok =
          List.for_all
            (fun (_, (x : Pvalue.xref)) -> dfs (x.pnode, x.version))
            (out_edges t pnode ~version)
        in
        Hashtbl.replace color key 2;
        ok
  in
  Hashtbl.fold (fun key _ acc -> acc && dfs key) t.fwd true

(* Transitive ancestor closure of (pnode, version): every (pnode, version)
   reachable over ancestry edges, *including* earlier versions linked by
   freeze records.  This is what `input*` ultimately walks. *)
let ancestors t pnode ~version =
  let seen = Hashtbl.create 64 in
  let rec go key =
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      let p, v = key in
      List.iter (fun (_, (x : Pvalue.xref)) -> go (x.pnode, x.version)) (out_edges t p ~version:v)
    end
  in
  go (pnode, version);
  Hashtbl.remove seen (pnode, version);
  Hashtbl.fold (fun k () acc -> k :: acc) seen []
