(* The provenance database Waldo maintains (paper §5.6).

   PASSv1 wrote provenance directly into databases; PASSv2 writes a log
   that Waldo later moves into a database and indexes.  The database holds
   the provenance graph at (object, version) granularity:

   - a node table: pnode -> kind, latest known name, known versions;
   - a quad store: (pnode, version, attribute, value);
   - a forward edge index: (pnode, version) -> ancestry cross-references;
   - a reverse edge index: pnode -> who refers to it;
   - a name index: name -> pnodes (every name sighting, deduplicated);
   - an attribute inverted index: attribute -> distinct (pnode, version)
     occurrences with a per-attribute cardinality count;
   - a pnode-granular ancestry adjacency (parents/children), giving the
     query planner transitive-reachability estimates without touching
     the version-level edge tables;
   - a per-node resident-version index (which versions hold quads).

   All secondary indexes are maintained incrementally by [add_record] and
   [set_file], so every load path — deserialize, merge_into, compact,
   archive fault-in — rebuilds them for free.  Byte accounting mirrors
   Table 3: [db_bytes] is the encoded size of the node and quad tables,
   [index_bytes] the encoded size of the indexes. *)

module Pnode = Pass_core.Pnode
module Pvalue = Pass_core.Pvalue
module Record = Pass_core.Record

type node_kind = File | Virtual

type node = {
  pnode : Pnode.t;
  mutable kind : node_kind;
  mutable node_name : string option;
  mutable max_version : int;
  mutable declared : bool;
      (* true when some layer announced the object (a Map or Mkobj frame,
         via set_file/declare_virtual); false for nodes that exist only
         because an ancestry record referenced them.  pvcheck's
         cross-layer pass keys on this: a referenced-but-never-declared
         object is a dangling identity. *)
  mutable floor : int;
      (* versions below the floor were compacted into a cold-tier archive
         segment; the hot db holds [floor, max_version].  0 = nothing
         archived.  Queries that dip below a floor fault the archive in
         through the registered handler. *)
}

type quad = { q_pnode : Pnode.t; q_version : int; q_attr : string; q_value : Pvalue.t }

(* One inverted-index posting list.  Entries are deduplicated at insert
   time ([ae_seen]) and kept in reverse insertion order; the sorted view
   handed to queries is memoized and invalidated on insert, so repeated
   [with_attr] probes stop re-sorting (ISSUE 9 small fix). *)
type attr_entry = {
  mutable ae_entries : (Pnode.t * int) list;
  ae_seen : (Pnode.t * int, unit) Hashtbl.t;
  mutable ae_sorted : (Pnode.t * int) list option;
}

type t = {
  nodes : (Pnode.t, node) Hashtbl.t;
  quads : (Pnode.t * int, quad list ref) Hashtbl.t; (* newest first *)
  fwd : (Pnode.t * int, (string * Pvalue.xref) list ref) Hashtbl.t;
  rev : (Pnode.t, (Pnode.t * int * string * int) list ref) Hashtbl.t;
  names : (string, Pnode.t list ref) Hashtbl.t;
  attrs : (string, attr_entry) Hashtbl.t;
      (* keyed by uppercased attribute, matching the evaluator's
         case-insensitive attribute semantics *)
  anc : (Pnode.t, Pnode.t list ref) Hashtbl.t; (* direct ancestry parents *)
  desc : (Pnode.t, Pnode.t list ref) Hashtbl.t; (* direct ancestry children *)
  adj_seen : (Pnode.t * Pnode.t, unit) Hashtbl.t; (* dedup for anc/desc *)
  resident : (Pnode.t, int list ref) Hashtbl.t;
      (* ascending versions that hold at least one quad *)
  versions_memo : (Pnode.t, int * int list) Hashtbl.t;
      (* memoized [0..max_version] enumeration, keyed by the max it was
         built for (ISSUE 9 small fix: no per-call re-allocation) *)
  mutable quad_count : int;
  mutable edge_count : int; (* ancestry quads ingested, with multiplicity *)
  mutable file_count : int;
  mutable db_bytes : int;
  mutable index_bytes : int;
  mutable floored : int;  (* how many nodes have floor > 0 *)
  mutable cold_loaded : bool;  (* archive history already faulted in *)
  mutable fault_handler : fault_handler option;
}

and fault_handler = t -> bool
(* Loads archived history into the db (via add_record/merge_into);
   returns false on an IO failure so the fault-in can be retried. *)

let create () =
  {
    nodes = Hashtbl.create 4096;
    quads = Hashtbl.create 8192;
    fwd = Hashtbl.create 8192;
    rev = Hashtbl.create 8192;
    names = Hashtbl.create 1024;
    attrs = Hashtbl.create 64;
    anc = Hashtbl.create 4096;
    desc = Hashtbl.create 4096;
    adj_seen = Hashtbl.create 8192;
    resident = Hashtbl.create 8192;
    versions_memo = Hashtbl.create 256;
    quad_count = 0;
    edge_count = 0;
    file_count = 0;
    db_bytes = 0;
    index_bytes = 0;
    floored = 0;
    cold_loaded = false;
    fault_handler = None;
  }

let multi_add tbl key v =
  match Hashtbl.find_opt tbl key with
  | Some l -> l := v :: !l
  | None -> Hashtbl.add tbl key (ref [ v ])

let node t pnode =
  match Hashtbl.find_opt t.nodes pnode with
  | Some n -> n
  | None ->
      let n =
        { pnode; kind = Virtual; node_name = None; max_version = 0; declared = false; floor = 0 }
      in
      Hashtbl.add t.nodes pnode n;
      t.db_bytes <- t.db_bytes + 24;
      n

(* Index one name sighting.  Every alias a node was ever seen under is
   indexed (set_file names and NAME records alike), so [find_by_name] is
   a complete superset for any name-equality predicate — the planner
   relies on this.  Entries are deduplicated at insert. *)
let index_name t name pnode =
  if name <> "" then
    match Hashtbl.find_opt t.names name with
    | Some l ->
        if not (List.exists (fun p -> Pnode.equal p pnode) !l) then begin
          l := pnode :: !l;
          t.index_bytes <- t.index_bytes + String.length name + 12
        end
    | None ->
        Hashtbl.add t.names name (ref [ pnode ]);
        t.index_bytes <- t.index_bytes + String.length name + 12

let set_file t pnode ~name =
  let n = node t pnode in
  (match n.kind with
  | Virtual -> t.file_count <- t.file_count + 1
  | File -> ());
  n.kind <- File;
  n.declared <- true;
  if name <> "" then begin
    (match n.node_name with
    | Some _ -> ()
    | None -> t.db_bytes <- t.db_bytes + String.length name);
    n.node_name <- Some name;
    index_name t name pnode
  end

let declare_virtual t pnode =
  let n = node t pnode in
  n.declared <- true

let encoded_record_size record =
  let buf = Buffer.create 32 in
  Record.encode buf record;
  Buffer.length buf

let attr_entry t key =
  match Hashtbl.find_opt t.attrs key with
  | Some ae -> ae
  | None ->
      let ae = { ae_entries = []; ae_seen = Hashtbl.create 64; ae_sorted = None } in
      Hashtbl.add t.attrs key ae;
      ae

(* Record a direct pnode-level ancestry edge [src -> parent].  Freeze
   edges (same pnode, earlier version) are skipped: they carry no
   cross-object reachability and would put self-loops in the adjacency. *)
let add_adjacency t src parent =
  if not (Pnode.equal src parent) && not (Hashtbl.mem t.adj_seen (src, parent)) then begin
    Hashtbl.replace t.adj_seen (src, parent) ();
    multi_add t.anc src parent;
    multi_add t.desc parent src;
    t.index_bytes <- t.index_bytes + 32
  end

let rec insert_version v = function
  | [] -> [ v ]
  | x :: _ as l when v < x -> v :: l
  | x :: rest -> x :: insert_version v rest

(* Insert one record attributed to (pnode, version). *)
let add_record t pnode ~version (record : Record.t) =
  let n = node t pnode in
  if version > n.max_version then n.max_version <- version;
  let q = { q_pnode = pnode; q_version = version; q_attr = record.attr; q_value = record.value } in
  (match Hashtbl.find_opt t.quads (pnode, version) with
  | Some l -> l := q :: !l
  | None ->
      Hashtbl.add t.quads (pnode, version) (ref [ q ]);
      (* first quad at this version: maintain the resident-version index *)
      (match Hashtbl.find_opt t.resident pnode with
      | Some l -> l := insert_version version !l
      | None -> Hashtbl.add t.resident pnode (ref [ version ])));
  t.quad_count <- t.quad_count + 1;
  let sz = encoded_record_size record in
  t.db_bytes <- t.db_bytes + sz + 16;
  let ae = attr_entry t (String.uppercase_ascii record.attr) in
  if not (Hashtbl.mem ae.ae_seen (pnode, version)) then begin
    Hashtbl.replace ae.ae_seen (pnode, version) ();
    ae.ae_entries <- (pnode, version) :: ae.ae_entries;
    ae.ae_sorted <- None;
    t.index_bytes <- t.index_bytes + 20 (* attr index entry *)
  end;
  (match record.value with
  | Pvalue.Xref x when Record.is_ancestry record ->
      multi_add t.fwd (pnode, version) (record.attr, x);
      multi_add t.rev x.pnode (pnode, version, record.attr, x.version);
      let _ : node = node t x.pnode in
      t.edge_count <- t.edge_count + 1;
      add_adjacency t pnode x.pnode;
      t.index_bytes <- t.index_bytes + 40 (* fwd + rev entries *)
  | Pvalue.Str s when String.equal record.attr Record.Attr.name ->
      let n = node t pnode in
      if n.node_name = None then n.node_name <- Some s;
      index_name t s pnode
  | _ -> ())

(* --- cold-tier fault-in --------------------------------------------------- *)

(* Floors are only ever set through this so [floored] stays in sync. *)
let set_floor t (n : node) f =
  if n.floor = 0 && f > 0 then t.floored <- t.floored + 1
  else if n.floor > 0 && f = 0 then t.floored <- t.floored - 1;
  n.floor <- f

let set_fault_handler t f = t.fault_handler <- Some f
let cold_loaded t = t.cold_loaded
let has_cold t = t.floored > 0

(* Load archived history on first demand.  [cold_loaded] is set before
   the handler runs: the handler repopulates the db with add_record /
   merge_into, which never read back through the triggering accessors,
   and the flag keeps a recursive trigger from looping.  Floors are NOT
   cleared — they still describe which versions live in which tier —
   so the flag is the only re-trigger gate; on handler failure it is
   reset so a later query retries the IO. *)
let maybe_fault_in t =
  match t.fault_handler with
  | Some f when (not t.cold_loaded) && t.floored > 0 ->
      t.cold_loaded <- true;
      if not (f t) then t.cold_loaded <- false
  | _ -> ()

let fault_in t = maybe_fault_in t

(* --- query access -------------------------------------------------------- *)

let find_node t pnode = Hashtbl.find_opt t.nodes pnode
let node_count t = Hashtbl.length t.nodes
let quad_count t = t.quad_count

let all_nodes t = Hashtbl.fold (fun _ n acc -> n :: acc) t.nodes []

let find_by_name t name =
  match Hashtbl.find_opt t.names name with
  | Some l -> List.sort Pnode.compare !l
  | None -> []

(* Typed order on (pnode, version) keys — the attr index and pvcheck sort
   with this instead of polymorphic compare. *)
let compare_pv (p, v) (p', v') =
  match Pnode.compare p p' with 0 -> Int.compare v v' | c -> c

let name_of t pnode = Option.bind (find_node t pnode) (fun n -> n.node_name)

let versions t pnode =
  match find_node t pnode with
  | None -> []
  | Some n -> (
      match Hashtbl.find_opt t.versions_memo pnode with
      | Some (hi, l) when hi = n.max_version -> l
      | _ ->
          let l = List.init (n.max_version + 1) Fun.id in
          Hashtbl.replace t.versions_memo pnode (n.max_version, l);
          l)

let resident_versions t pnode =
  match Hashtbl.find_opt t.resident pnode with Some l -> !l | None -> []

let version_range t pnode =
  match find_node t pnode with None -> None | Some n -> Some (n.floor, n.max_version)

(* Raw accessors see only what is resident — serialize and compact use
   them so snapshotting the hot tier never faults the archive in. *)
let records_at_raw t pnode ~version =
  match Hashtbl.find_opt t.quads (pnode, version) with
  | Some l -> List.rev !l
  | None -> []

let out_edges_raw t pnode ~version =
  match Hashtbl.find_opt t.fwd (pnode, version) with Some l -> List.rev !l | None -> []

(* A query for a version below the node's floor needs archived history. *)
let below_floor t pnode version =
  match Hashtbl.find_opt t.nodes pnode with
  | Some n -> version < n.floor
  | None -> false

(* Whole-history accessors fault the archive in up front when the node
   has a floor, then walk the resident-version index — versions that
   never held a quad are skipped instead of probed one by one. *)
let fault_in_node_history t pnode =
  if t.floored > 0 then
    match Hashtbl.find_opt t.nodes pnode with
    | Some n when n.floor > 0 -> maybe_fault_in t
    | _ -> ()

let records_at t pnode ~version =
  if below_floor t pnode version then maybe_fault_in t;
  records_at_raw t pnode ~version

let records_all t pnode =
  fault_in_node_history t pnode;
  List.concat_map (fun v -> records_at_raw t pnode ~version:v) (resident_versions t pnode)

let out_edges t pnode ~version =
  if below_floor t pnode version then maybe_fault_in t;
  out_edges_raw t pnode ~version

let out_edges_all t pnode =
  fault_in_node_history t pnode;
  List.concat_map
    (fun v -> List.map (fun (a, x) -> (v, a, x)) (out_edges_raw t pnode ~version:v))
    (resident_versions t pnode)

let in_edges t pnode =
  (* reverse edges into [pnode] can originate from any node's archived
     versions, so the presence of any floor is reason to fault in *)
  if t.floored > 0 then maybe_fault_in t;
  match Hashtbl.find_opt t.rev pnode with Some l -> List.rev !l | None -> []

let with_attr t attr =
  if t.floored > 0 then maybe_fault_in t;
  match Hashtbl.find_opt t.attrs (String.uppercase_ascii attr) with
  | None -> []
  | Some ae -> (
      match ae.ae_sorted with
      | Some l -> l
      | None ->
          let l = List.sort compare_pv ae.ae_entries in
          ae.ae_sorted <- Some l;
          l)

let attr_value t pnode ~version attr =
  List.find_map
    (fun (q : quad) -> if String.equal q.q_attr attr then Some q.q_value else None)
    (records_at t pnode ~version)

(* --- planner statistics --------------------------------------------------- *)

(* Statistics read the hot tier as-is (no fault-in): they feed cardinality
   *estimates*, and estimation must stay side-effect free at prepare
   time.  Execution uses the exact accessors above, which do fault in. *)

let file_count t = t.file_count
let edge_count t = t.edge_count

let attr_cardinality t attr =
  match Hashtbl.find_opt t.attrs (String.uppercase_ascii attr) with
  | Some ae -> Hashtbl.length ae.ae_seen
  | None -> 0

let parents_of t pnode =
  match Hashtbl.find_opt t.anc pnode with Some l -> List.rev !l | None -> []

let children_of t pnode =
  match Hashtbl.find_opt t.desc pnode with Some l -> List.rev !l | None -> []

let reach tbl ?limit start =
  let cap = match limit with Some c -> c | None -> max_int in
  let seen : (Pnode.t, unit) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.replace seen start ();
  let queue = Queue.create () in
  Queue.add start queue;
  let out = ref [] in
  let count = ref 0 in
  while (not (Queue.is_empty queue)) && !count < cap do
    let p = Queue.pop queue in
    List.iter
      (fun next ->
        if not (Hashtbl.mem seen next) then begin
          Hashtbl.replace seen next ();
          incr count;
          out := next :: !out;
          Queue.add next queue
        end)
      (match Hashtbl.find_opt tbl p with Some l -> !l | None -> [])
  done;
  List.rev !out

let reach_ancestors t ?limit pnode = reach t.anc ?limit pnode
let reach_descendants t ?limit pnode = reach t.desc ?limit pnode

let db_bytes t = t.db_bytes
let index_bytes t = t.index_bytes
let total_bytes t = t.db_bytes + t.index_bytes

(* Merge [src] into [dst]: used by the query engine to get a unified view
   over several volumes' databases (e.g. two NFS servers plus the local
   disk in the Figure 1 scenario). *)
let merge_into ~dst ~src =
  Hashtbl.iter
    (fun _ (n : node) ->
      (match (n.kind, n.declared) with
      | File, _ -> set_file dst n.pnode ~name:(Option.value n.node_name ~default:"")
      | Virtual, true -> declare_virtual dst n.pnode
      | Virtual, false ->
          (* an undeclared stub stays a stub: merging must not launder a
             dangling reference into a declared identity *)
          let _ : node = node dst n.pnode in
          ());
      (match n.node_name with
      | Some nm when n.kind = Virtual ->
          (* preserve names of virtual objects too *)
          let d = node dst n.pnode in
          if d.node_name = None then d.node_name <- Some nm;
          index_name dst nm n.pnode
      | _ -> ());
      (* carry version metadata: the max known version can exceed the
         highest resident quad (empty versions), and the archive floor
         must survive a merge-based load *)
      let d = node dst n.pnode in
      if n.max_version > d.max_version then d.max_version <- n.max_version;
      if n.floor > d.floor then set_floor dst d n.floor)
    src.nodes;
  Hashtbl.iter
    (fun (pnode, version) quads ->
      List.iter
        (fun (q : quad) -> add_record dst pnode ~version { attr = q.q_attr; value = q.q_value })
        (List.rev !quads))
    src.quads

(* --- on-disk form ---------------------------------------------------------- *)

(* Sum of per-attribute posting-list cardinalities: part of the PROVDB4
   index-stats footer, recomputed after load to prove the rebuilt
   secondary indexes agree with the writer's. *)
let attr_entry_total t = Hashtbl.fold (fun _ ae acc -> acc + Hashtbl.length ae.ae_seen) t.attrs 0

(* Serialize the node and quad tables (secondary indexes are rebuilt on
   load, since add_record maintains them).  Deterministic order so
   persisted images are stable.  Only resident quads are written (raw
   accessors), so the hot tier snapshots without faulting the archive
   in.  Quad bytes are a pure function of which versions are resident —
   each version's quads live wholly in one tier and keep their ingest
   order — so two dbs that went through the same compaction history
   serialize identically no matter how they got there (replay, image
   load, fault-in).

   PROVDB4 appends an index-stats footer (ancestry-edge count and total
   attr-index cardinality over the written quads); deserialize recomputes
   both from its rebuilt indexes and rejects the image on mismatch, so a
   db whose incremental index maintenance drifted cannot round-trip. *)
let serialize t =
  let buf = Buffer.create 65536 in
  Wire.put_string buf "PROVDB4";
  let nodes = List.sort (fun a b -> Pnode.compare a.pnode b.pnode) (all_nodes t) in
  Wire.put_u32 buf (List.length nodes);
  List.iter
    (fun n ->
      Wire.put_i64 buf (Pnode.to_int n.pnode);
      (* kind byte: 1 = file, 2 = declared virtual, 0 = undeclared stub *)
      Wire.put_u8 buf (match (n.kind, n.declared) with
        | File, _ -> 1
        | Virtual, true -> 2
        | Virtual, false -> 0);
      Wire.put_string buf (Option.value n.node_name ~default:"");
      Wire.put_i64 buf n.max_version;
      Wire.put_i64 buf n.floor)
    nodes;
  let quads =
    List.concat_map
      (fun n ->
        List.concat_map
          (fun v -> records_at_raw t n.pnode ~version:v)
          (List.init (n.max_version + 1) Fun.id))
      nodes
  in
  Wire.put_u32 buf (List.length quads);
  List.iter
    (fun q ->
      Wire.put_i64 buf (Pnode.to_int q.q_pnode);
      Wire.put_i64 buf q.q_version;
      Record.encode buf { Record.attr = q.q_attr; value = q.q_value })
    quads;
  Wire.put_i64 buf t.edge_count;
  Wire.put_i64 buf (attr_entry_total t);
  Buffer.contents buf

let deserialize image =
  let pos = ref 0 in
  let version =
    match Wire.get_string image pos with
    | "PROVDB4" -> 4
    | "PROVDB3" -> 3 (* pre-planner images: no index-stats footer *)
    | "PROVDB2" -> 2 (* pre-floor images, still loadable *)
    | _ -> Wire.corrupt "provdb: bad magic"
  in
  let t = create () in
  let n_nodes = Wire.get_u32 image pos in
  for _ = 1 to n_nodes do
    let pnode = Pnode.of_int (Wire.get_i64 image pos) in
    let kind = Wire.get_u8 image pos in
    let name = Wire.get_string image pos in
    let maxv = Wire.get_i64 image pos in
    let floor = if version >= 3 then Wire.get_i64 image pos else 0 in
    (match kind with
    | 1 -> set_file t pnode ~name
    | _ ->
        if kind = 2 then declare_virtual t pnode
        else begin
          let _ : node = node t pnode in
          ()
        end;
        (* virtual objects and stubs can carry names too (a merge or an
           archived NAME record gives them one) *)
        if name <> "" then begin
          let n = node t pnode in
          if n.node_name = None then n.node_name <- Some name;
          index_name t name pnode
        end);
    (* honour stored version metadata: a compacted image's floor, and a
       max_version that may exceed the highest resident quad *)
    let n = node t pnode in
    if maxv > n.max_version then n.max_version <- maxv;
    if floor > 0 then set_floor t n floor
  done;
  let n_quads = Wire.get_u32 image pos in
  for _ = 1 to n_quads do
    let pnode = Pnode.of_int (Wire.get_i64 image pos) in
    let version = Wire.get_i64 image pos in
    let record = Record.decode image pos in
    add_record t pnode ~version record
  done;
  if version >= 4 then begin
    let edges = Wire.get_i64 image pos in
    let attr_total = Wire.get_i64 image pos in
    if edges <> t.edge_count || attr_total <> attr_entry_total t then
      Wire.corrupt "provdb: index-stats footer disagrees with rebuilt indexes"
  end;
  t

(* --- version compaction ---------------------------------------------------- *)

(* Split [t] into a hot db and a cold db along the paper's frozen-version
   semantics: a version below the latest is frozen (immutable), so all
   but the newest [keep] versions of each node can move to the cold
   tier.  Per node the cutoff is [max floor (max_version - keep + 1)]:

   - versions in [floor, cutoff) — newly expired — go to the cold db,
     which becomes this generation's archive segment;
   - versions below the old floor are NOT re-emitted even when they are
     resident (faulted in): they already live in earlier segments, which
     are append-only;
   - the hot db keeps [cutoff, max_version] with its floor raised to the
     cutoff.

   Both outputs carry the full node table (node entries are a few dozen
   bytes; quads and edges are the bulk), so the hot tier can answer
   existence/name/version queries without touching the archive. *)
let compact t ~keep =
  let keep = max 1 keep in
  let hot = create () and cold = create () in
  let nodes = List.sort (fun a b -> Pnode.compare a.pnode b.pnode) (all_nodes t) in
  let copy_node dst (n : node) =
    (match (n.kind, n.declared) with
    | File, _ -> set_file dst n.pnode ~name:(Option.value n.node_name ~default:"")
    | Virtual, true -> declare_virtual dst n.pnode
    | Virtual, false ->
        let _ : node = node dst n.pnode in
        ());
    (match n.node_name with
    | Some nm when n.kind = Virtual ->
        let d = node dst n.pnode in
        if d.node_name = None then d.node_name <- Some nm;
        index_name dst nm n.pnode
    | _ -> ());
    let d = node dst n.pnode in
    if n.max_version > d.max_version then d.max_version <- n.max_version
  in
  (* node tables first so add_record below finds fully-described nodes *)
  List.iter
    (fun n ->
      copy_node hot n;
      copy_node cold n)
    nodes;
  List.iter
    (fun (n : node) ->
      let cutoff = max n.floor (max 0 (n.max_version - keep + 1)) in
      for v = n.floor to n.max_version do
        let dst = if v < cutoff then cold else hot in
        List.iter
          (fun (q : quad) ->
            add_record dst q.q_pnode ~version:v { Record.attr = q.q_attr; value = q.q_value })
          (records_at_raw t n.pnode ~version:v)
      done;
      let hn = node hot n.pnode in
      set_floor hot hn cutoff;
      (* the cold db records the segment's base so it is self-describing *)
      let cn = node cold n.pnode in
      set_floor cold cn n.floor)
    nodes;
  (hot, cold)

(* --- integrity ----------------------------------------------------------- *)

(* Acyclicity at (pnode, version) granularity — DESIGN.md invariant 1. *)
let is_acyclic t =
  let color : (Pnode.t * int, int) Hashtbl.t = Hashtbl.create 1024 in
  let rec dfs key =
    match Hashtbl.find_opt color key with
    | Some 1 -> false
    | Some _ -> true
    | None ->
        Hashtbl.replace color key 1;
        let pnode, version = key in
        let ok =
          List.for_all
            (fun (_, (x : Pvalue.xref)) -> dfs (x.pnode, x.version))
            (out_edges t pnode ~version)
        in
        Hashtbl.replace color key 2;
        ok
  in
  Hashtbl.fold (fun key _ acc -> acc && dfs key) t.fwd true

(* Transitive ancestor closure of (pnode, version): every (pnode, version)
   reachable over ancestry edges, *including* earlier versions linked by
   freeze records.  This is what `input*` ultimately walks. *)
let ancestors t pnode ~version =
  let seen = Hashtbl.create 64 in
  let rec go key =
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      let p, v = key in
      List.iter (fun (_, (x : Pvalue.xref)) -> go (x.pnode, x.version)) (out_edges t p ~version:v)
    end
  in
  go (pnode, version);
  Hashtbl.remove seen (pnode, version);
  Hashtbl.fold (fun k () acc -> k :: acc) seen []

(* --- index self-check ------------------------------------------------------ *)

(* Rebuild-and-compare: round-trip [t] through its on-disk form (which
   reconstructs every secondary index from the quad store alone) and
   diff each index against the live one.  Any drift in the incremental
   maintenance — a missed posting, a stale adjacency row, a resident
   version that leaked — shows up as a mismatch.  The chaos harness runs
   this after crash/recover and after archive fault-in. *)
let verify_indexes t =
  (* settle the archive first: probing indexes below would otherwise
     fault it in while we iterate over the very tables it repopulates *)
  if t.floored > 0 then maybe_fault_in t;
  let sorted_versions l = List.sort_uniq Int.compare l in
  let eq_pnodes = List.equal Pnode.equal in
  let eq_ints = List.equal Int.equal in
  let describe p = string_of_int (Pnode.to_int p) in
  match deserialize (serialize t) with
  | exception Wire.Corrupt msg -> Error ("round-trip rejected: " ^ msg)
  | r ->
      let problem = ref None in
      let fail msg = if !problem = None then problem := Some msg in
      if node_count t <> node_count r then
        fail
          (Printf.sprintf "node count %d (live) vs %d (rebuilt)" (node_count t) (node_count r));
      Hashtbl.iter
        (fun p (n : node) ->
          match find_node r p with
          | None -> fail ("node " ^ describe p ^ " missing after rebuild")
          | Some m ->
              if not (Option.equal String.equal n.node_name m.node_name) then
                fail ("node " ^ describe p ^ ": name index source drifted");
              if n.max_version <> m.max_version || n.floor <> m.floor then
                fail ("node " ^ describe p ^ ": version-range index drifted");
              if
                not
                  (eq_ints
                     (sorted_versions (resident_versions t p))
                     (sorted_versions (resident_versions r p)))
              then fail ("node " ^ describe p ^ ": resident-version index drifted");
              if
                not
                  (eq_pnodes
                     (List.sort Pnode.compare (parents_of t p))
                     (List.sort Pnode.compare (parents_of r p)))
              then fail ("node " ^ describe p ^ ": ancestry adjacency (parents) drifted");
              if
                not
                  (eq_pnodes
                     (List.sort Pnode.compare (children_of t p))
                     (List.sort Pnode.compare (children_of r p)))
              then fail ("node " ^ describe p ^ ": ancestry adjacency (children) drifted"))
        t.nodes;
      if Hashtbl.length t.names <> Hashtbl.length r.names then
        fail "name index: alias count drifted";
      Hashtbl.iter
        (fun name _ ->
          if not (eq_pnodes (find_by_name t name) (find_by_name r name)) then
            fail ("name index: entries for \"" ^ name ^ "\" drifted"))
        t.names;
      if Hashtbl.length t.attrs <> Hashtbl.length r.attrs then
        fail "attr index: attribute count drifted";
      Hashtbl.iter
        (fun attr _ ->
          if attr_cardinality t attr <> attr_cardinality r attr then
            fail ("attr index: cardinality of " ^ attr ^ " drifted")
          else if not (List.equal (fun a b -> compare_pv a b = 0) (with_attr t attr) (with_attr r attr))
          then fail ("attr index: postings for " ^ attr ^ " drifted"))
        t.attrs;
      if t.edge_count <> r.edge_count then fail "edge count drifted";
      if t.file_count <> r.file_count then fail "file count drifted";
      (match !problem with Some msg -> Error msg | None -> Ok ())
