(** Waldo: the user-level daemon that moves provenance from the WAP logs
    into the database and serves the query engine (paper, Section 5.6).

    Also resolves PA-NFS transactions: bundles tagged with a transaction
    id are buffered until ENDTXN; orphaned transactions (client crashed
    mid-transaction) are discarded at {!finalize}. *)

type t

type stats = {
  mutable logs_processed : int;
  mutable frames_ingested : int;
  mutable records_ingested : int;
  mutable txns_committed : int;
  mutable txns_orphaned : int;
}

val create :
  ?registry:Telemetry.registry -> ?tracer:Pvtrace.t -> lower:Vfs.ops -> unit -> t
(** [create ~lower ()] builds a Waldo reading logs from the [.pass]
    directory of [lower] (the file system beneath Lasagna).  [registry]
    receives the [waldo.*] instruments (default {!Telemetry.default});
    [tracer] (default {!Pvtrace.disabled}) records ingest spans and
    committed / orphaned transaction events. *)

val db : t -> Provdb.t

val stats : t -> stats
(** A point-in-time view over the [waldo.*] telemetry instruments. *)

val attach : t -> Lasagna.t -> unit
(** Subscribe to the Lasagna instance's closed-log notifications (the
    simulated inotify). *)

val process_log : t -> dir:Vfs.ino -> name:string -> (unit, Vfs.errno) result
(** Ingest one closed log file and remove it. *)

val replay_frames : t -> Wap_log.frame list -> unit
(** Ingest already-parsed frames through the same path {!attach} uses —
    offline fsck replays the unprocessed active log with this so the
    checker cannot diverge from the ingester. *)

val pending_txns : t -> int list
(** Transaction ids buffered but not yet ENDTXN-committed, sorted.  After
    a full replay these are the orphaned transactions. *)

val persist : t -> dir:string -> (unit, Vfs.errno) result
(** Write the database image to [dir/db.dat] on the lower file system. *)

val load : ?registry:Telemetry.registry -> lower:Vfs.ops -> dir:string -> unit -> (t, Vfs.errno) result
(** Restart the daemon from a persisted image. *)

val finalize : t -> Lasagna.t -> int
(** Close the active log, drain it, and discard orphaned transactions;
    returns the number of orphans discarded. *)
