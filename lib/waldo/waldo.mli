(** Waldo: the user-level daemon that moves provenance from the WAP logs
    into the database and serves the query engine (paper, Section 5.6).

    Also resolves PA-NFS transactions: bundles tagged with a transaction
    id are buffered until ENDTXN; orphaned transactions (client crashed
    mid-transaction) are discarded at {!finalize}. *)

type t

type stats = {
  mutable logs_processed : int;
  mutable frames_ingested : int;
  mutable records_ingested : int;
  mutable txns_committed : int;
  mutable txns_orphaned : int;
}

type policy = Disabled | Manual | Every_frames of int
(** When to take a checkpoint.  [Disabled] (the default) keeps the
    original behaviour: processed logs are removed immediately and
    nothing is snapshotted.  [Manual] retains processed logs until an
    explicit {!checkpoint} covers them; [Every_frames n] additionally
    triggers a checkpoint after every [n] ingested frames. *)

val create :
  ?registry:Telemetry.registry ->
  ?tracer:Pvtrace.t ->
  ?policy:policy ->
  ?compact_keep:int ->
  ?checkpoint_dir:string ->
  lower:Vfs.ops ->
  unit ->
  t
(** [create ~lower ()] builds a Waldo reading logs from the [.pass]
    directory of [lower] (the file system beneath Lasagna).  [registry]
    receives the [waldo.*] instruments (default {!Telemetry.default});
    [tracer] (default {!Pvtrace.disabled}) records ingest spans and
    committed / orphaned transaction events.  [compact_keep] bounds how
    many versions per node stay hot across a checkpoint (the rest move
    to cold-tier archive segments); [checkpoint_dir] (default
    ["/.waldo"]) holds the MANIFEST and its payload files. *)

val db : t -> Provdb.t

val stats : t -> stats
(** A point-in-time view over the [waldo.*] telemetry instruments. *)

val attach : t -> Lasagna.t -> unit
(** Subscribe to the Lasagna instance's closed-log notifications (the
    simulated inotify). *)

val process_log : t -> dir:Vfs.ino -> name:string -> (unit, Vfs.errno) result
(** Ingest one closed log file and remove it. *)

val replay_frames : t -> Wap_log.frame list -> unit
(** Ingest already-parsed frames through the same path {!attach} uses —
    offline fsck replays the unprocessed active log with this so the
    checker cannot diverge from the ingester. *)

val pending_txns : t -> int list
(** Transaction ids buffered but not yet ENDTXN-committed, sorted.  After
    a full replay these are the orphaned transactions. *)

val persist : t -> dir:string -> (unit, Vfs.errno) result
(** Write the database image to [dir/db.dat] on the lower file system.
    The image is digest-framed and published with a temp-file + rename,
    so a crash mid-persist leaves the previous image intact. *)

val load : ?registry:Telemetry.registry -> lower:Vfs.ops -> dir:string -> unit -> (t, Vfs.errno) result
(** Restart the daemon from a persisted image.  A torn or tampered
    image is [EIO], never a half-loaded database. *)

val checkpoint : t -> (unit, Vfs.errno) result
(** Take a durable checkpoint: compact the db per [compact_keep], stage
    the hot image (plus an archive segment for newly-expired versions
    and a sidecar of in-flight transactions), commit them with an atomic
    MANIFEST rename, then truncate the WAP logs the image covers.  A
    crash at any disk tick leaves either the previous checkpoint (all
    logs intact) or the new one; {!recover} finishes interrupted
    cleanup. *)

type recovery_info = {
  ri_gen : int;  (** checkpoint generation recovered from, 0 = none *)
  ri_manifest : bool;  (** a durable checkpoint was found *)
  ri_watermark : int;  (** logs below this were covered by the image *)
  ri_logs_skipped : int;  (** covered logs found on disk, not replayed *)
  ri_logs_replayed : int;  (** suffix logs replayed after the image *)
  ri_frames_replayed : int;
  ri_pending_restored : int;  (** in-flight txns restored from the sidecar *)
  ri_archives : int;  (** cold-tier segments available for fault-in *)
}

val recover :
  ?registry:Telemetry.registry ->
  ?tracer:Pvtrace.t ->
  ?policy:policy ->
  ?compact_keep:int ->
  ?dir:string ->
  lower:Vfs.ops ->
  unit ->
  (t * recovery_info, Vfs.errno) result
(** Restart Waldo after a crash: adopt the checkpoint image (preserving
    compaction floors), restore in-flight transaction buffers from the
    sidecar, finish any cleanup the crash interrupted, and replay only
    the post-watermark log suffix.  Without a manifest this is the
    original full-history replay. *)

val fault_in_archive : t -> unit
(** Eagerly load the cold-tier archive segments into the db (normally
    they fault in lazily on the first query below a compaction floor). *)

val finalize : t -> Lasagna.t -> int
(** Close the active log, drain it, and discard orphaned transactions;
    returns the number of orphans discarded. *)
