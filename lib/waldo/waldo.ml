(* Waldo (paper §5.6): the user-level daemon that moves provenance from the
   WAP logs into the database and serves the query engine.

   The kernel closes a log when it exceeds a maximum size or goes dormant;
   Waldo is notified (inotify in the paper, a callback here), processes
   the log, and removes it.  Waldo also resolves PA-NFS transactions:
   bundles tagged with a transaction id are buffered until the ENDTXN
   record arrives; orphaned transactions — a client that crashed after
   OP_BEGINTXN but before completing — are discarded at finalize time,
   which is exactly the recovery story of Section 6.1.2. *)

module Pnode = Pass_core.Pnode
module Pvalue = Pass_core.Pvalue
module Record = Pass_core.Record
module Dpapi = Pass_core.Dpapi

type stats = {
  mutable logs_processed : int;
  mutable frames_ingested : int;
  mutable records_ingested : int;
  mutable txns_committed : int;
  mutable txns_orphaned : int;
}

(* Registry-backed instruments; [stats] is a view built on demand. *)
type instruments = {
  logs_processed : Telemetry.counter;
  frames_ingested : Telemetry.counter;
  records_ingested : Telemetry.counter;
  txns_committed : Telemetry.counter;
  txns_orphaned : Telemetry.counter;
  checkpoints : Telemetry.counter;
  logs_truncated : Telemetry.counter;
  ckpt_staleness : Telemetry.gauge; (* waldo.frames_since_ckpt *)
  txns_pending : Telemetry.gauge; (* waldo.pending_txns *)
}

(* When to take a checkpoint.  [Disabled] preserves the original
   behaviour: every processed log is removed immediately and nothing is
   snapshotted, so recovery replays whatever logs remain.  [Manual] and
   [Every_frames] switch to retention mode — processed logs stay on disk
   until a durable checkpoint covers them. *)
type policy = Disabled | Manual | Every_frames of int

type t = {
  mutable db : Provdb.t; (* replaced by checkpoint compaction and recover *)
  lower : Vfs.ops; (* the file system holding the .pass directory *)
  ingest_version : (Pnode.t, int) Hashtbl.t; (* version tracking during ingest *)
  pending_txns : (int, Dpapi.bundle list ref) Hashtbl.t;
  tracer : Pvtrace.t;
  registry : Telemetry.registry option;
  policy : policy;
  compact_keep : int option; (* versions per node kept hot; None = all *)
  checkpoint_dir : string;
  mutable gen : int; (* generation of the last committed checkpoint *)
  mutable next_watermark : int; (* 1 + highest fully-ingested log seq *)
  mutable archives : (string * string) list; (* (name, digest), oldest first *)
  mutable frames_since_ckpt : int;
  i : instruments;
}

let create ?registry ?(tracer = Pvtrace.disabled) ?(policy = Disabled)
    ?compact_keep ?(checkpoint_dir = "/.waldo") ~lower () =
  let c name = Telemetry.counter ?registry ("waldo." ^ name) in
  let g name = Telemetry.gauge ?registry ("waldo." ^ name) in
  {
    db = Provdb.create ();
    lower;
    ingest_version = Hashtbl.create 1024;
    pending_txns = Hashtbl.create 16;
    tracer;
    registry;
    policy;
    compact_keep;
    checkpoint_dir;
    gen = 0;
    next_watermark = 0;
    archives = [];
    frames_since_ckpt = 0;
    i =
      {
        logs_processed = c "logs_processed";
        frames_ingested = c "frames_ingested";
        records_ingested = c "records_ingested";
        txns_committed = c "txns_committed";
        txns_orphaned = c "txns_orphaned";
        checkpoints = c "checkpoints";
        logs_truncated = c "logs_truncated";
        ckpt_staleness = g "frames_since_ckpt";
        txns_pending = g "pending_txns";
      };
  }

let db t = t.db

let stats t : stats =
  let v = Telemetry.value in
  {
    logs_processed = v t.i.logs_processed;
    frames_ingested = v t.i.frames_ingested;
    records_ingested = v t.i.records_ingested;
    txns_committed = v t.i.txns_committed;
    txns_orphaned = v t.i.txns_orphaned;
  }

let cur_version t pnode =
  Option.value (Hashtbl.find_opt t.ingest_version pnode) ~default:0

let ingest_record t pnode (record : Record.t) =
  Telemetry.incr t.i.records_ingested;
  (* FREEZE records advance the ingest-side version: subsequent records for
     this object belong to the new version.  The freeze's own records (the
     marker and the version edge) are attributed to the new version. *)
  (match record.value with
  | Pvalue.Int v when String.equal record.attr Record.Attr.freeze ->
      Hashtbl.replace t.ingest_version pnode v
  | _ -> ());
  Provdb.add_record t.db pnode ~version:(cur_version t pnode) record

let ingest_bundle t (bundle : Dpapi.bundle) =
  List.iter
    (fun (e : Dpapi.bundle_entry) ->
      List.iter (ingest_record t e.target.pnode) e.records)
    bundle

let ingest_frame t = function
  | Wap_log.Map { pnode; ino = _; name } -> Provdb.set_file t.db pnode ~name
  | Wap_log.Mkobj { pnode } -> Provdb.declare_virtual t.db pnode
  | Wap_log.Bundle { txn = Some id; bundle; data = _ } -> (
      (* transactional: buffer until ENDTXN *)
      let is_endtxn =
        List.exists
          (fun (e : Dpapi.bundle_entry) ->
            List.exists
              (fun (r : Record.t) -> String.equal r.attr Record.Attr.endtxn)
              e.records)
          bundle
      in
      let pending =
        match Hashtbl.find_opt t.pending_txns id with
        | Some l -> l
        | None ->
            let l = ref [] in
            Hashtbl.add t.pending_txns id l;
            Telemetry.set t.i.txns_pending
              (float_of_int (Hashtbl.length t.pending_txns));
            l
      in
      pending := bundle :: !pending;
      if is_endtxn then begin
        List.iter (ingest_bundle t) (List.rev !pending);
        Hashtbl.remove t.pending_txns id;
        Telemetry.set t.i.txns_pending
          (float_of_int (Hashtbl.length t.pending_txns));
        Telemetry.incr t.i.txns_committed;
        Pvtrace.event t.tracer ~layer:"waldo" ~op:"txn_end"
          ~outcome:"committed" ()
      end)
  | Wap_log.Bundle { txn = None; bundle; data } ->
      (* md5 first: the digest describes the write the frame records, so
         its position must not depend on how many provenance-only writes
         were coalesced into the same frame by client batching *)
      (match data with
      | Some d ->
          Provdb.add_record t.db d.d_pnode ~version:(cur_version t d.d_pnode)
            (Record.make Record.Attr.data_md5 (Pvalue.Bytes d.d_md5))
      | None -> ());
      ingest_bundle t bundle

(* Offline replay: ingest a list of already-parsed frames through the same
   production path `attach` uses.  pvcheck replays an unprocessed active
   log through this so the checker cannot diverge from the ingester. *)
let replay_frames t frames =
  Pvtrace.span t.tracer ~layer:"waldo" ~op:"replay" @@ fun () ->
  Pvtrace.set_outcome t.tracer "replayed";
  List.iter
    (fun f ->
      Telemetry.incr t.i.frames_ingested;
      ingest_frame t f)
    frames

let pending_txns t =
  List.sort Int.compare
    (Hashtbl.fold (fun id _ acc -> id :: acc) t.pending_txns [])

let ( let* ) = Result.bind

(* --- checkpointing (DESIGN §13) ------------------------------------------- *)

(* Encode the in-flight transaction buffers as WAP frames so a
   checkpoint can carry them across the truncation of the logs they
   arrived in.  Frames are emitted in sorted-id, arrival order — the
   order replay would have rebuilt the buffers in. *)
let encode_pending t =
  let ids =
    List.sort Int.compare (Hashtbl.fold (fun id _ acc -> id :: acc) t.pending_txns [])
  in
  let buf = Buffer.create 4096 in
  List.iter
    (fun id ->
      let bundles = List.rev !(Hashtbl.find t.pending_txns id) in
      List.iter
        (fun bundle ->
          Wap_log.encode_frame_into buf
            (Wap_log.Bundle { txn = Some id; bundle; data = None }))
        bundles)
    ids;
  (ids, Buffer.contents buf)

let remove_if_exists lower path =
  match Vfs.remove_path lower path with
  | Ok () | Error Vfs.ENOENT -> Ok ()
  | Error e -> Error e

(* Take a checkpoint: stage every payload file, then commit with the
   manifest rename, then clean up what the new manifest obsoletes.

   Write order is the crash argument.  Before the manifest rename is
   durable nothing references the staged files, so a crash leaves the
   previous checkpoint (or none) governing recovery with every WAP log
   still on disk.  After it, the new manifest names a complete,
   digest-verified set.  Cleanup — truncating covered logs, dropping the
   previous generation's image/sidecar — runs last and is idempotent;
   [recover] finishes it if a crash interrupts. *)
let checkpoint t =
  Pvtrace.span t.tracer ~layer:"waldo" ~op:"checkpoint" @@ fun () ->
  let dir = t.checkpoint_dir in
  let gen = t.gen + 1 in
  let watermark = t.next_watermark in
  (* stage compaction in memory (pure) *)
  let keep = Option.value t.compact_keep ~default:max_int in
  let hot, cold =
    if keep = max_int && not (Provdb.cold_loaded t.db) then
      (* nothing to strip: the resident db IS the hot tier *)
      (t.db, None)
    else
      let h, c = Provdb.compact t.db ~keep in
      (h, if Provdb.quad_count c > 0 then Some c else None)
  in
  (* stage payload files; none is referenced until the manifest commits *)
  let db_name = Checkpoint.image_name ~gen in
  let* db_digest =
    Checkpoint.write_atomic t.lower ~path:(dir ^ "/" ^ db_name) (Provdb.serialize hot)
  in
  let* archives =
    match cold with
    | None -> Ok t.archives
    | Some c ->
        let name = Checkpoint.archive_name ~gen in
        let* digest =
          Checkpoint.write_atomic t.lower ~path:(dir ^ "/" ^ name) (Provdb.serialize c)
        in
        Ok (t.archives @ [ (name, digest) ])
  in
  let pending_ids, pending_payload = encode_pending t in
  let* pending =
    if pending_ids = [] then Ok None
    else
      let name = Checkpoint.pending_name ~gen in
      let* digest =
        Checkpoint.write_atomic t.lower ~path:(dir ^ "/" ^ name) pending_payload
      in
      Ok (Some (name, digest))
  in
  (* COMMIT *)
  let* () =
    Checkpoint.write_manifest t.lower ~dir
      {
        Checkpoint.m_gen = gen;
        m_watermark = watermark;
        m_db_name = db_name;
        m_db_digest = db_digest;
        m_archives = archives;
        m_pending = pending;
        m_pending_txns = pending_ids;
      }
  in
  let old_gen = t.gen in
  t.db <- hot;
  t.gen <- gen;
  t.archives <- archives;
  t.frames_since_ckpt <- 0;
  Telemetry.set t.i.ckpt_staleness 0.;
  Archive.install_handler ?registry:t.registry t.lower ~dir ~segments:archives t.db;
  Telemetry.incr t.i.checkpoints;
  Pvtrace.set_outcome t.tracer "committed";
  (* cleanup: everything from here is re-done by recover after a crash *)
  let* truncated = Checkpoint.truncate_covered t.lower ~watermark in
  Telemetry.add t.i.logs_truncated truncated;
  let* () =
    if old_gen > 0 then
      let* () = remove_if_exists t.lower (dir ^ "/" ^ Checkpoint.image_name ~gen:old_gen) in
      remove_if_exists t.lower (dir ^ "/" ^ Checkpoint.pending_name ~gen:old_gen)
    else Ok ()
  in
  Ok ()

(* Process one closed log: read it and ingest every frame.  Without a
   checkpoint policy the log is removed immediately (the original
   behaviour); under [Manual] / [Every_frames] it is retained until a
   durable checkpoint covers it, and [Every_frames] triggers that
   checkpoint from here. *)
let process_log t ~dir ~name =
  let* () =
    Pvtrace.span t.tracer ~layer:"waldo" ~op:"process_log" @@ fun () ->
    let* ino = t.lower.Vfs.lookup ~dir name in
    let* st = t.lower.Vfs.getattr ino in
    let* image = t.lower.Vfs.read ino ~off:0 ~len:st.Vfs.st_size in
    let frames, _consumed = Wap_log.parse_log image in
    List.iter
      (fun f ->
        Telemetry.incr t.i.frames_ingested;
        ingest_frame t f)
      frames;
    t.frames_since_ckpt <- t.frames_since_ckpt + List.length frames;
    Telemetry.set t.i.ckpt_staleness (float_of_int t.frames_since_ckpt);
    (match Checkpoint.log_seq name with
    | Some seq when seq + 1 > t.next_watermark -> t.next_watermark <- seq + 1
    | _ -> ());
    let* () =
      match t.policy with
      | Disabled -> t.lower.Vfs.unlink ~dir name
      | Manual | Every_frames _ -> Ok ()
    in
    Telemetry.incr t.i.logs_processed;
    Ok ()
  in
  match t.policy with
  | Every_frames n when t.frames_since_ckpt >= n -> checkpoint t
  | _ -> Ok ()

(* Wire this Waldo to a Lasagna instance: every closed log is processed
   immediately (the simulated inotify). *)
let attach t lasagna =
  let dir =
    match Vfs.lookup_path t.lower "/.pass" with
    | Ok ino -> ino
    | Error e -> Vfs.fatal "waldo: no .pass dir" e
  in
  Lasagna.on_log_closed lasagna (fun name _ino ->
      match process_log t ~dir ~name with
      | Ok () -> ()
      | Error e ->
          Logs.warn (fun m -> m "waldo: failed to process %s: %s" name (Vfs.errno_to_string e)))

(* Re-seed the ingest-side version map from the stored graph: the latest
   frozen version of each object is its max attributed version.  Without
   this, records arriving after a daemon restart would be attributed to
   version 0. *)
let reseed_versions t =
  List.iter
    (fun (n : Provdb.node) ->
      if n.max_version > 0 then
        Hashtbl.replace t.ingest_version n.pnode n.max_version)
    (Provdb.all_nodes t.db)

(* Persist the database through the file system (the paper's Waldo keeps
   its databases on disk); [load] brings it back after a daemon restart.
   The image is staged and renamed into place, so a crash mid-persist
   leaves the previous image intact, and it is digest-framed so [load]
   detects a damaged one instead of ingesting garbage. *)
let persist t ~dir =
  let image = Provdb.serialize t.db in
  let* _digest = Checkpoint.write_atomic t.lower ~path:(dir ^ "/db.dat") image in
  Ok ()

let load ?registry ~lower ~dir () =
  let* image, _digest = Checkpoint.read_verified lower ~path:(dir ^ "/db.dat") in
  match Provdb.deserialize image with
  | db ->
      let t = create ?registry ~lower () in
      Provdb.merge_into ~dst:(t.db : Provdb.t) ~src:db;
      reseed_versions t;
      Ok t
  | exception Wire.Corrupt _ -> Error Vfs.EIO

(* --- bounded recovery ------------------------------------------------------ *)

type recovery_info = {
  ri_gen : int;  (* checkpoint generation recovered from, 0 = none *)
  ri_manifest : bool;  (* a durable checkpoint was found *)
  ri_watermark : int;  (* logs below this were covered by the image *)
  ri_logs_skipped : int;  (* covered logs found on disk and not replayed *)
  ri_logs_replayed : int;  (* suffix logs replayed after the image *)
  ri_frames_replayed : int;
  ri_pending_restored : int;  (* in-flight txns restored from the sidecar *)
  ri_archives : int;  (* cold-tier segments available for fault-in *)
}

let sorted_logs lower =
  match Vfs.lookup_path lower "/.pass" with
  | Error Vfs.ENOENT -> Ok []
  | Error e -> Error e
  | Ok pass_dir ->
      let* names = lower.Vfs.readdir pass_dir in
      let logs = List.filter_map (fun n -> Option.map (fun s -> (s, n)) (Checkpoint.log_seq n)) names in
      Ok (List.sort (fun (a, _) (b, _) -> Int.compare a b) logs)

let replay_log t ~seq ~name =
  let* image = Vfs.read_file t.lower ("/.pass/" ^ name) in
  let frames, _consumed = Wap_log.parse_log image in
  replay_frames t frames;
  if seq + 1 > t.next_watermark then t.next_watermark <- seq + 1;
  Ok (List.length frames)

(* Delete whatever a crashed checkpoint or interrupted cleanup left in
   the checkpoint directory: staged *.tmp files and payload files of
   generations the manifest does not reference.  The legacy stand-alone
   [persist] image (db.dat) is never touched. *)
let clean_strays lower ~dir keep =
  match Vfs.lookup_path lower dir with
  | Error Vfs.ENOENT -> Ok ()
  | Error e -> Error e
  | Ok dir_ino ->
      let* names = lower.Vfs.readdir dir_ino in
      List.fold_left
        (fun acc name ->
          let* () = acc in
          if List.mem name keep || String.equal name "db.dat" then Ok ()
          else lower.Vfs.unlink ~dir:dir_ino name)
        (Ok ()) names

(* Restart Waldo from the durable checkpoint: load the image, restore
   the in-flight transaction buffers from the sidecar, finish any
   cleanup a crash interrupted, and replay only the post-watermark log
   suffix.  Without a manifest this degrades to the full-history replay
   the system always had. *)
let recover ?registry ?tracer ?policy ?compact_keep ?(dir = "/.waldo") ~lower () =
  let t = create ?registry ?tracer ?policy ?compact_keep ~checkpoint_dir:dir ~lower () in
  let* manifest = Checkpoint.read_manifest lower ~dir in
  match manifest with
  | None ->
      (* no checkpoint ever committed: replay all history *)
      let* () = clean_strays lower ~dir [ Checkpoint.manifest_name ] in
      let* logs = sorted_logs lower in
      let* frames =
        List.fold_left
          (fun acc (seq, name) ->
            let* n = acc in
            let* k = replay_log t ~seq ~name in
            Ok (n + k))
          (Ok 0) logs
      in
      Ok
        ( t,
          {
            ri_gen = 0;
            ri_manifest = false;
            ri_watermark = 0;
            ri_logs_skipped = 0;
            ri_logs_replayed = List.length logs;
            ri_frames_replayed = frames;
            ri_pending_restored = 0;
            ri_archives = 0;
          } )
  | Some m ->
      let* image, digest =
        Checkpoint.read_verified lower ~path:(dir ^ "/" ^ m.Checkpoint.m_db_name)
      in
      let* db =
        if not (String.equal digest m.Checkpoint.m_db_digest) then Error Vfs.EIO
        else
          match Provdb.deserialize image with
          | db -> Ok db
          | exception Wire.Corrupt _ -> Error Vfs.EIO
      in
      (* the image is adopted wholesale (not merged) so node floors and
         the hot/cold tier split come back exactly as checkpointed *)
      t.db <- db;
      reseed_versions t;
      t.gen <- m.Checkpoint.m_gen;
      t.archives <- m.Checkpoint.m_archives;
      t.next_watermark <- m.Checkpoint.m_watermark;
      (* restore in-flight transaction buffers from the sidecar *)
      let* pending_restored =
        match m.Checkpoint.m_pending with
        | None -> Ok 0
        | Some (name, want) ->
            let* payload, got = Checkpoint.read_verified lower ~path:(dir ^ "/" ^ name) in
            if not (String.equal want got) then Error Vfs.EIO
            else begin
              let frames, _consumed = Wap_log.parse_log payload in
              List.iter (ingest_frame t) frames;
              Ok (Hashtbl.length t.pending_txns)
            end
      in
      (* finish interrupted cleanup, idempotently *)
      let keep =
        Checkpoint.manifest_name :: m.Checkpoint.m_db_name
        :: (match m.Checkpoint.m_pending with Some (n, _) -> [ n ] | None -> [])
        @ List.map fst m.Checkpoint.m_archives
      in
      let* () = clean_strays lower ~dir keep in
      let* logs = sorted_logs lower in
      let covered, suffix =
        List.partition (fun (seq, _) -> seq < m.Checkpoint.m_watermark) logs
      in
      let* truncated = Checkpoint.truncate_covered lower ~watermark:m.Checkpoint.m_watermark in
      Telemetry.add t.i.logs_truncated truncated;
      let* frames =
        List.fold_left
          (fun acc (seq, name) ->
            let* n = acc in
            let* k = replay_log t ~seq ~name in
            Ok (n + k))
          (Ok 0) suffix
      in
      Archive.install_handler ?registry t.lower ~dir ~segments:t.archives t.db;
      Ok
        ( t,
          {
            ri_gen = m.Checkpoint.m_gen;
            ri_manifest = true;
            ri_watermark = m.Checkpoint.m_watermark;
            ri_logs_skipped = List.length covered;
            ri_logs_replayed = List.length suffix;
            ri_frames_replayed = frames;
            ri_pending_restored = pending_restored;
            ri_archives = List.length t.archives;
          } )

let fault_in_archive t = Provdb.fault_in t.db

(* Drain everything: close the active log and (because attach processes
   synchronously) return once the database is up to date.  Orphaned
   transactions are discarded and counted. *)
let finalize t lasagna =
  Lasagna.flush_log lasagna;
  let orphans = Hashtbl.length t.pending_txns in
  Telemetry.add t.i.txns_orphaned orphans;
  List.iter
    (fun _ ->
      Pvtrace.event t.tracer ~layer:"waldo" ~op:"txn_discard"
        ~outcome:"orphaned" ())
    (pending_txns t);
  Hashtbl.reset t.pending_txns;
  Telemetry.set t.i.txns_pending 0.;
  orphans
