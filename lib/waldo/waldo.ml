(* Waldo (paper §5.6): the user-level daemon that moves provenance from the
   WAP logs into the database and serves the query engine.

   The kernel closes a log when it exceeds a maximum size or goes dormant;
   Waldo is notified (inotify in the paper, a callback here), processes
   the log, and removes it.  Waldo also resolves PA-NFS transactions:
   bundles tagged with a transaction id are buffered until the ENDTXN
   record arrives; orphaned transactions — a client that crashed after
   OP_BEGINTXN but before completing — are discarded at finalize time,
   which is exactly the recovery story of Section 6.1.2. *)

module Pnode = Pass_core.Pnode
module Pvalue = Pass_core.Pvalue
module Record = Pass_core.Record
module Dpapi = Pass_core.Dpapi

type stats = {
  mutable logs_processed : int;
  mutable frames_ingested : int;
  mutable records_ingested : int;
  mutable txns_committed : int;
  mutable txns_orphaned : int;
}

(* Registry-backed instruments; [stats] is a view built on demand. *)
type instruments = {
  logs_processed : Telemetry.counter;
  frames_ingested : Telemetry.counter;
  records_ingested : Telemetry.counter;
  txns_committed : Telemetry.counter;
  txns_orphaned : Telemetry.counter;
}

type t = {
  db : Provdb.t;
  lower : Vfs.ops; (* the file system holding the .pass directory *)
  ingest_version : (Pnode.t, int) Hashtbl.t; (* version tracking during ingest *)
  pending_txns : (int, Dpapi.bundle list ref) Hashtbl.t;
  tracer : Pvtrace.t;
  i : instruments;
}

let create ?registry ?(tracer = Pvtrace.disabled) ~lower () =
  let c name = Telemetry.counter ?registry ("waldo." ^ name) in
  {
    db = Provdb.create ();
    lower;
    ingest_version = Hashtbl.create 1024;
    pending_txns = Hashtbl.create 16;
    tracer;
    i =
      {
        logs_processed = c "logs_processed";
        frames_ingested = c "frames_ingested";
        records_ingested = c "records_ingested";
        txns_committed = c "txns_committed";
        txns_orphaned = c "txns_orphaned";
      };
  }

let db t = t.db

let stats t : stats =
  let v = Telemetry.value in
  {
    logs_processed = v t.i.logs_processed;
    frames_ingested = v t.i.frames_ingested;
    records_ingested = v t.i.records_ingested;
    txns_committed = v t.i.txns_committed;
    txns_orphaned = v t.i.txns_orphaned;
  }

let cur_version t pnode =
  Option.value (Hashtbl.find_opt t.ingest_version pnode) ~default:0

let ingest_record t pnode (record : Record.t) =
  Telemetry.incr t.i.records_ingested;
  (* FREEZE records advance the ingest-side version: subsequent records for
     this object belong to the new version.  The freeze's own records (the
     marker and the version edge) are attributed to the new version. *)
  (match record.value with
  | Pvalue.Int v when String.equal record.attr Record.Attr.freeze ->
      Hashtbl.replace t.ingest_version pnode v
  | _ -> ());
  Provdb.add_record t.db pnode ~version:(cur_version t pnode) record

let ingest_bundle t (bundle : Dpapi.bundle) =
  List.iter
    (fun (e : Dpapi.bundle_entry) ->
      List.iter (ingest_record t e.target.pnode) e.records)
    bundle

let ingest_frame t = function
  | Wap_log.Map { pnode; ino = _; name } -> Provdb.set_file t.db pnode ~name
  | Wap_log.Mkobj { pnode } -> Provdb.declare_virtual t.db pnode
  | Wap_log.Bundle { txn = Some id; bundle; data = _ } -> (
      (* transactional: buffer until ENDTXN *)
      let is_endtxn =
        List.exists
          (fun (e : Dpapi.bundle_entry) ->
            List.exists
              (fun (r : Record.t) -> String.equal r.attr Record.Attr.endtxn)
              e.records)
          bundle
      in
      let pending =
        match Hashtbl.find_opt t.pending_txns id with
        | Some l -> l
        | None ->
            let l = ref [] in
            Hashtbl.add t.pending_txns id l;
            l
      in
      pending := bundle :: !pending;
      if is_endtxn then begin
        List.iter (ingest_bundle t) (List.rev !pending);
        Hashtbl.remove t.pending_txns id;
        Telemetry.incr t.i.txns_committed;
        Pvtrace.event t.tracer ~layer:"waldo" ~op:"txn_end"
          ~outcome:"committed" ()
      end)
  | Wap_log.Bundle { txn = None; bundle; data } ->
      (* md5 first: the digest describes the write the frame records, so
         its position must not depend on how many provenance-only writes
         were coalesced into the same frame by client batching *)
      (match data with
      | Some d ->
          Provdb.add_record t.db d.d_pnode ~version:(cur_version t d.d_pnode)
            (Record.make Record.Attr.data_md5 (Pvalue.Bytes d.d_md5))
      | None -> ());
      ingest_bundle t bundle

(* Offline replay: ingest a list of already-parsed frames through the same
   production path `attach` uses.  pvcheck replays an unprocessed active
   log through this so the checker cannot diverge from the ingester. *)
let replay_frames t frames =
  Pvtrace.span t.tracer ~layer:"waldo" ~op:"replay" @@ fun () ->
  Pvtrace.set_outcome t.tracer "replayed";
  List.iter
    (fun f ->
      Telemetry.incr t.i.frames_ingested;
      ingest_frame t f)
    frames

let pending_txns t =
  List.sort Int.compare
    (Hashtbl.fold (fun id _ acc -> id :: acc) t.pending_txns [])

let ( let* ) = Result.bind

(* Process one closed log: read it, ingest every frame, remove the file. *)
let process_log t ~dir ~name =
  Pvtrace.span t.tracer ~layer:"waldo" ~op:"process_log" @@ fun () ->
  let* ino = t.lower.Vfs.lookup ~dir name in
  let* st = t.lower.Vfs.getattr ino in
  let* image = t.lower.Vfs.read ino ~off:0 ~len:st.Vfs.st_size in
  let frames, _consumed = Wap_log.parse_log image in
  List.iter
    (fun f ->
      Telemetry.incr t.i.frames_ingested;
      ingest_frame t f)
    frames;
  let* () = t.lower.Vfs.unlink ~dir name in
  Telemetry.incr t.i.logs_processed;
  Ok ()

(* Wire this Waldo to a Lasagna instance: every closed log is processed
   immediately (the simulated inotify). *)
let attach t lasagna =
  let dir =
    match Vfs.lookup_path t.lower "/.pass" with
    | Ok ino -> ino
    | Error e -> Vfs.fatal "waldo: no .pass dir" e
  in
  Lasagna.on_log_closed lasagna (fun name _ino ->
      match process_log t ~dir ~name with
      | Ok () -> ()
      | Error e ->
          Logs.warn (fun m -> m "waldo: failed to process %s: %s" name (Vfs.errno_to_string e)))

(* Persist the database through the file system (the paper's Waldo keeps
   its databases on disk); [load] brings it back after a daemon restart. *)
let persist t ~dir =
  let image = Provdb.serialize t.db in
  let* _ino = Vfs.write_file ~mkparents:true t.lower (dir ^ "/db.dat") image in
  Ok ()

let load ?registry ~lower ~dir () =
  let* image = Vfs.read_file lower (dir ^ "/db.dat") in
  match Provdb.deserialize image with
  | db ->
      let t = create ?registry ~lower () in
      Provdb.merge_into ~dst:(t.db : Provdb.t) ~src:db;
      (* Re-seed the ingest-side version map from the stored graph: the
         latest frozen version of each object is its max attributed
         version.  Without this, records arriving after a daemon restart
         would be attributed to version 0. *)
      List.iter
        (fun (n : Provdb.node) ->
          if n.max_version > 0 then
            Hashtbl.replace t.ingest_version n.pnode n.max_version)
        (Provdb.all_nodes t.db);
      Ok t
  | exception Wire.Corrupt _ -> Error Vfs.EIO

(* Drain everything: close the active log and (because attach processes
   synchronously) return once the database is up to date.  Orphaned
   transactions are discarded and counted. *)
let finalize t lasagna =
  Lasagna.flush_log lasagna;
  let orphans = Hashtbl.length t.pending_txns in
  Telemetry.add t.i.txns_orphaned orphans;
  List.iter
    (fun _ ->
      Pvtrace.event t.tracer ~layer:"waldo" ~op:"txn_discard"
        ~outcome:"orphaned" ())
    (pending_txns t);
  Hashtbl.reset t.pending_txns;
  orphans
