(* Ancestry diffing — the paper's opening motivating question: "How does
   the ancestry of two objects differ?" (§1).

   Compares the transitive ancestries of two (object, version) pairs at
   object granularity: which ancestors appear only on one side, and which
   appear on both sides but at different versions (the §3.1 anomaly case:
   Wednesday's atlas descends from a *newer version* of an input than
   Monday's did). *)

module Pnode = Pass_core.Pnode

type side = { s_pnode : Pnode.t; s_version : int }

type entry = {
  e_pnode : Pnode.t;
  e_name : string option;
  versions_a : int list; (* versions of this ancestor reachable from a *)
  versions_b : int list;
}

type t = {
  only_a : entry list;
  only_b : entry list;
  version_changed : entry list; (* on both sides, different version sets *)
  common : int; (* ancestors identical on both sides *)
}

(* Ancestry of one version, NOT following the object's own version chain:
   following it would make a newer version's ancestry subsume every older
   one's and the diff would be empty by construction.  Each side is "what
   this version was derived from", which is what run-vs-run comparison
   means. *)
let ancestor_versions db root ~version =
  let tbl : (Pnode.t, int list ref) Hashtbl.t = Hashtbl.create 64 in
  let seen : (Pnode.t * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let rec go (p, v) =
    if not (Hashtbl.mem seen (p, v)) then begin
      Hashtbl.replace seen (p, v) ();
      if not (Pnode.equal p root) then begin
        (match Hashtbl.find_opt tbl p with
        | Some l -> l := v :: !l
        | None -> Hashtbl.add tbl p (ref [ v ]))
      end;
      if Pnode.equal p root && v <> version then ()
      else
        List.iter
          (fun (_, (x : Pass_core.Pvalue.xref)) ->
            (* skip the root's version chain; everything else is a real
               derivation edge *)
            if not (Pnode.equal x.pnode root) then go (x.pnode, x.version))
          (Provdb.out_edges db p ~version:v)
    end
  in
  go (root, version);
  tbl

let diff db ~a ~b =
  let ta = ancestor_versions db a.s_pnode ~version:a.s_version in
  let tb = ancestor_versions db b.s_pnode ~version:b.s_version in
  let entry p va vb =
    {
      e_pnode = p;
      e_name = Provdb.name_of db p;
      versions_a = List.sort_uniq Int.compare va;
      versions_b = List.sort_uniq Int.compare vb;
    }
  in
  let only_a = ref [] and only_b = ref [] and changed = ref [] and common = ref 0 in
  Hashtbl.iter
    (fun p va ->
      match Hashtbl.find_opt tb p with
      | None -> only_a := entry p !va [] :: !only_a
      | Some vb ->
          let e = entry p !va !vb in
          if e.versions_a = e.versions_b then incr common else changed := e :: !changed)
    ta;
  Hashtbl.iter
    (fun p vb -> if not (Hashtbl.mem ta p) then only_b := entry p [] !vb :: !only_b)
    tb;
  let by_name e e' = Option.compare String.compare e.e_name e'.e_name in
  {
    only_a = List.sort by_name !only_a;
    only_b = List.sort by_name !only_b;
    version_changed = List.sort by_name !changed;
    common = !common;
  }

(* Diff two named objects at their latest versions; when the same name
   resolves to several objects (e.g. re-created files), the latest pnode
   wins. *)
let diff_by_name db ~name_a ~name_b =
  let resolve name =
    match List.rev (Provdb.find_by_name db name) with
    | p :: _ ->
        let n = Option.get (Provdb.find_node db p) in
        Some { s_pnode = p; s_version = n.Provdb.max_version }
    | [] -> None
  in
  match (resolve name_a, resolve name_b) with
  | Some a, Some b -> Some (diff db ~a ~b)
  | _ -> None

(* The §3.1 shape: two versions of the same object (Monday's atlas vs
   Wednesday's). *)
let diff_versions db pnode ~version_a ~version_b =
  diff db ~a:{ s_pnode = pnode; s_version = version_a }
    ~b:{ s_pnode = pnode; s_version = version_b }

(* Restrict a diff to file ancestors: per-run virtual objects (operators,
   invocations, processes) get fresh pnodes every run and would dominate
   the output, while the run-to-run signal — which *data* changed — lives
   in the file entries. *)
let files_only db t =
  let is_file e =
    match Provdb.find_node db e.e_pnode with
    | Some n -> n.Provdb.kind = Provdb.File
    | None -> false
  in
  {
    only_a = List.filter is_file t.only_a;
    only_b = List.filter is_file t.only_b;
    version_changed = List.filter is_file t.version_changed;
    common = t.common;
  }

let pp_entry ppf (e : entry) =
  let name =
    Option.value e.e_name ~default:(Printf.sprintf "p%d" (Pnode.to_int e.e_pnode))
  in
  let vs l = String.concat "," (List.map string_of_int l) in
  match (e.versions_a, e.versions_b) with
  | va, [] -> Format.fprintf ppf "%s (v%s)" name (vs va)
  | [], vb -> Format.fprintf ppf "%s (v%s)" name (vs vb)
  | va, vb -> Format.fprintf ppf "%s (v%s -> v%s)" name (vs va) (vs vb)

let pp ppf t =
  Format.fprintf ppf "@[<v>common ancestors: %d@," t.common;
  if t.only_a <> [] then begin
    Format.fprintf ppf "only in A's ancestry:@,";
    List.iter (fun e -> Format.fprintf ppf "  %a@," pp_entry e) t.only_a
  end;
  if t.only_b <> [] then begin
    Format.fprintf ppf "only in B's ancestry:@,";
    List.iter (fun e -> Format.fprintf ppf "  %a@," pp_entry e) t.only_b
  end;
  if t.version_changed <> [] then begin
    Format.fprintf ppf "same ancestor, different versions:@,";
    List.iter (fun e -> Format.fprintf ppf "  %a@," pp_entry e) t.version_changed
  end;
  Format.fprintf ppf "@]"
