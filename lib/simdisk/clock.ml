(* Simulated wall clock, in nanoseconds.  One per simulated machine; the
   disk charges I/O time and the kernel charges CPU time against it.  The
   elapsed-time overheads of Table 2 are read off this clock.

   The advance hook lets an observer (pvmon's scrape loop) run after the
   clock moves without this layer knowing who is watching: the closure is
   opaque, so no dependency points upward.  Hook bodies must not advance
   the clock (observation charges no simulated time). *)

type t = { mutable now_ns : int; mutable hook : (int -> unit) option }

let create () = { now_ns = 0; hook = None }
let now t = t.now_ns

let advance t ns =
  if ns > 0 then begin
    t.now_ns <- t.now_ns + ns;
    match t.hook with None -> () | Some f -> f t.now_ns
  end

let on_advance t f = t.hook <- Some f
let ns_of_ms ms = ms * 1_000_000
let ns_of_us us = us * 1_000
let seconds t = float_of_int t.now_ns /. 1e9
