(* Simulated block device with a positional cost model and crash injection.

   The cost model is what lets the Table 2 elapsed-time overheads emerge
   mechanically rather than by fiat: the paper attributes the Mercurial and
   Linux-compile overheads to provenance-log writes interfering with the
   workload's own I/O ("leading to extra seeks").  We therefore track the
   head position; an access that is not sequential with the previous one
   pays a seek (proportional to distance, capped) plus rotational latency,
   then a per-byte transfer cost.  The geometry loosely follows the paper's
   7200rpm WD800JB: ~8.9 ms average seek, ~4.2 ms half-rotation, ~60 MB/s
   media rate.

   Crash injection: [schedule_crash d ~after_writes:n] makes the device
   fail permanently after [n] more successful block writes.  Data written
   before the crash persists across [revive]; everything after is lost.
   Lasagna's WAP recovery is tested against exactly this behaviour. *)

let block_size = 4096

type stats = {
  mutable reads : int;
  mutable writes : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
  mutable seeks : int;
  mutable seek_ns : int;
  mutable transfer_ns : int;
}

(* Registry-backed instruments; [stats] is a view built on demand. *)
type instruments = {
  reads : Telemetry.counter;
  writes : Telemetry.counter;
  bytes_read : Telemetry.counter;
  bytes_written : Telemetry.counter;
  seeks : Telemetry.counter;
  seek_ns : Telemetry.counter;
  transfer_ns : Telemetry.counter;
}

let instruments registry =
  let c name = Telemetry.counter ?registry ("disk." ^ name) in
  {
    reads = c "reads";
    writes = c "writes";
    bytes_read = c "bytes_read";
    bytes_written = c "bytes_written";
    seeks = c "seeks";
    seek_ns = c "seek_ns";
    transfer_ns = c "transfer_ns";
  }

exception Crashed
exception Io_error

(* One sequential stream the elevator is maintaining: its current head
   position and the logical time of its last use (for LRU eviction). *)
type stream = { mutable s_head : int; mutable s_used : int }

type t = {
  clock : Clock.t;
  blocks : (int, bytes) Hashtbl.t;
  total_blocks : int;
  streams : stream array;
  mutable use_counter : int;
  mutable crashed : bool;
  mutable crash_after_writes : int option;
  mutable fault : Fault.plan;
  i : instruments;
  (* cost knobs, ns *)
  full_seek_ns : int;
  min_seek_ns : int;
  rotation_ns : int;
  settle_ns : int;
  per_block_transfer_ns : int;
}

let create ?registry ?(total_blocks = 20_000_000) ?(stream_slots = 5) ?(fault = Fault.none)
    ~clock () =
  {
    clock;
    blocks = Hashtbl.create 65536;
    total_blocks;
    streams = Array.init (max 1 stream_slots) (fun _ -> { s_head = -1; s_used = 0 });
    use_counter = 0;
    crashed = false;
    crash_after_writes = None;
    fault;
    i = instruments registry;
    full_seek_ns = Clock.ns_of_ms 17;      (* full-stroke seek *)
    min_seek_ns = Clock.ns_of_us 800;      (* track-to-track *)
    rotation_ns = Clock.ns_of_ms 4;        (* ~half rotation at 7200rpm *)
    settle_ns = Clock.ns_of_us 350;        (* near-stream resume, elevator-amortized *)
    per_block_transfer_ns = Clock.ns_of_us 65; (* 4 KB at ~60 MB/s *)
  }

let stats t : stats =
  let v = Telemetry.value in
  {
    reads = v t.i.reads;
    writes = v t.i.writes;
    bytes_read = v t.i.bytes_read;
    bytes_written = v t.i.bytes_written;
    seeks = v t.i.seeks;
    seek_ns = v t.i.seek_ns;
    transfer_ns = v t.i.transfer_ns;
  }
let clock t = t.clock
let is_crashed t = t.crashed
let set_fault t plan = t.fault <- plan

let schedule_crash t ~after_writes =
  if after_writes < 0 then invalid_arg "Disk.schedule_crash";
  t.crash_after_writes <- Some after_writes

let crash t = t.crashed <- true

let revive t =
  t.crashed <- false;
  t.crash_after_writes <- None

let check_alive t = if t.crashed then raise Crashed

(* The head-movement model.  An I/O scheduler (elevator) keeps a handful
   of sequential streams going; an access that continues a stream is free,
   one that lands near a live stream pays only a settle cost, and one that
   opens a new region pays a distance-dependent seek plus rotational
   latency — evicting the least-recently-used stream.  Provenance-log
   traffic added to a workload that already uses all the stream slots is
   exactly what produces the paper's "provenance writes interfere with the
   workload's writes, leading to extra seeks". *)
let stream_near_window = 256 (* blocks: 1 MB *)

let charge_position t blk =
  t.use_counter <- t.use_counter + 1;
  let best = ref None in
  Array.iter
    (fun s ->
      if s.s_head >= 0 then begin
        let d = abs (blk - s.s_head) in
        match !best with
        | Some (_, bd) when bd <= d -> ()
        | _ -> if d <= stream_near_window then best := Some (s, d)
      end)
    t.streams;
  let charge_transfer = ref true in
  (match !best with
  | Some (s, d) when d <= 1 ->
      (* a rewrite of the hot tail block is absorbed by the page cache and
         written to the medium once, so it transfers for free; advancing
         to a fresh block pays one block of transfer *)
      if blk = s.s_head - 1 then charge_transfer := false;
      s.s_head <- max s.s_head (blk + 1);
      s.s_used <- t.use_counter
  | Some (s, _) ->
      (* near a live stream: elevator picks it up within the same sweep *)
      Telemetry.add t.i.seek_ns t.settle_ns;
      Clock.advance t.clock t.settle_ns;
      s.s_head <- blk + 1;
      s.s_used <- t.use_counter
  | None ->
      (* cold region: real seek; evict the least-recently-used stream *)
      Telemetry.incr t.i.seeks;
      let lru = ref t.streams.(0) in
      Array.iter (fun s -> if s.s_used < !lru.s_used then lru := s) t.streams;
      let origin = if !lru.s_head >= 0 then !lru.s_head else 0 in
      let distance = abs (blk - origin) in
      let frac = float_of_int distance /. float_of_int t.total_blocks in
      (* seek time grows roughly with the square root of the distance *)
      let seek =
        t.min_seek_ns
        + int_of_float (float_of_int (t.full_seek_ns - t.min_seek_ns) *. sqrt frac)
      in
      let cost = seek + t.rotation_ns in
      Telemetry.add t.i.seek_ns cost;
      Clock.advance t.clock cost;
      !lru.s_head <- blk + 1;
      !lru.s_used <- t.use_counter);
  if !charge_transfer then begin
    Telemetry.add t.i.transfer_ns t.per_block_transfer_ns;
    Clock.advance t.clock t.per_block_transfer_ns
  end

let check_block t blk =
  if blk < 0 || blk >= t.total_blocks then invalid_arg "Disk: block out of range"

let read_block t blk =
  check_alive t;
  check_block t blk;
  (match Fault.next_disk_fault t.fault ~now:(Clock.now t.clock) ~write:false with
  | Some Fault.Read_error ->
      (* the failed request still costs a rotation before the drive
         reports the error *)
      Clock.advance t.clock t.rotation_ns;
      raise Io_error
  | Some _ | None -> ());
  charge_position t blk;
  Telemetry.incr t.i.reads;
  Telemetry.add t.i.bytes_read block_size;
  match Hashtbl.find_opt t.blocks blk with
  | Some b -> Bytes.copy b
  | None -> Bytes.make block_size '\000'

let stored_block t blk =
  match Hashtbl.find_opt t.blocks blk with
  | Some old -> Bytes.copy old
  | None -> Bytes.make block_size '\000'

let write_block t blk data =
  check_alive t;
  check_block t blk;
  if Bytes.length data <> block_size then invalid_arg "Disk.write_block: bad size";
  (match t.crash_after_writes with
  | Some 0 ->
      t.crashed <- true;
      raise Crashed
  | Some n -> t.crash_after_writes <- Some (n - 1)
  | None -> ());
  let fault = Fault.next_disk_fault t.fault ~now:(Clock.now t.clock) ~write:true in
  (match fault with
  | Some Fault.Write_error ->
      Clock.advance t.clock t.rotation_ns;
      raise Io_error
  | Some _ | None -> ());
  charge_position t blk;
  Telemetry.incr t.i.writes;
  Telemetry.add t.i.bytes_written block_size;
  match fault with
  | Some Fault.Torn_write ->
      (* only a prefix reaches the medium, yet the drive reports success
         — the latent fault WAP digests exist to catch *)
      let b = stored_block t blk in
      Bytes.blit data 0 b 0 (block_size / 2);
      Hashtbl.replace t.blocks blk b
  | Some Fault.Corrupt_sector ->
      let b = Bytes.copy data in
      let pos = block_size / 2 in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0xff));
      Hashtbl.replace t.blocks blk b
  | Some Fault.Write_error | Some Fault.Read_error | None ->
      Hashtbl.replace t.blocks blk (Bytes.copy data)

(* Convenience used by the file systems: read/write [len] bytes at an
   arbitrary byte offset, spanning blocks as needed. *)
let read_bytes t ~off ~len =
  if off < 0 || len < 0 then invalid_arg "Disk.read_bytes";
  let out = Bytes.create len in
  let pos = ref 0 in
  while !pos < len do
    let abs = off + !pos in
    let blk = abs / block_size and inblk = abs mod block_size in
    let n = min (block_size - inblk) (len - !pos) in
    let b = read_block t blk in
    Bytes.blit b inblk out !pos n;
    pos := !pos + n
  done;
  Bytes.unsafe_to_string out

let write_bytes t ~off data =
  if off < 0 then invalid_arg "Disk.write_bytes";
  let len = String.length data in
  let pos = ref 0 in
  while !pos < len do
    let abs = off + !pos in
    let blk = abs / block_size and inblk = abs mod block_size in
    let n = min (block_size - inblk) (len - !pos) in
    let b =
      if n = block_size then Bytes.make block_size '\000'
      else
        match Hashtbl.find_opt t.blocks blk with
        | Some old -> Bytes.copy old
        | None -> Bytes.make block_size '\000'
    in
    Bytes.blit_string data !pos b inblk n;
    write_block t blk b;
    pos := !pos + n
  done

let io_ns t = Telemetry.value t.i.seek_ns + Telemetry.value t.i.transfer_ns
