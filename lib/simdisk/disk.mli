(** Simulated block device.

    Tracks head position and charges seek, rotation and transfer time to
    the machine's {!Clock}, which is how the elapsed-time overheads of the
    paper's Table 2 emerge from provenance-log/data seek interference.
    Supports crash injection for testing the WAP recovery protocol. *)

val block_size : int
(** 4096 bytes. *)

type t

type stats = {
  mutable reads : int;
  mutable writes : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
  mutable seeks : int;
  mutable seek_ns : int;
  mutable transfer_ns : int;
}

exception Crashed
(** Raised by any access to a crashed device. *)

exception Io_error
(** Raised when the fault plan injects a transient EIO on a block access
    (the file system above maps it to [Vfs.EIO]; a retry may succeed). *)

val create :
  ?registry:Telemetry.registry ->
  ?total_blocks:int ->
  ?stream_slots:int ->
  ?fault:Fault.plan ->
  clock:Clock.t ->
  unit ->
  t
(** [stream_slots] (default 5) is the number of concurrent sequential
    streams the simulated elevator can keep cheap; [registry] receives the
    [disk.*] instruments (default {!Telemetry.default}).  [fault] (default
    {!Fault.none}) injects transient errors, torn writes and silent
    corruption per its seeded schedule. *)

val set_fault : t -> Fault.plan -> unit
(** Swap the fault plan on a live device. *)

val stats : t -> stats
(** A point-in-time view over the [disk.*] telemetry instruments. *)

val clock : t -> Clock.t
val is_crashed : t -> bool

val schedule_crash : t -> after_writes:int -> unit
(** Fail permanently after [after_writes] more successful block writes. *)

val crash : t -> unit
(** Fail immediately. *)

val revive : t -> unit
(** Bring the device back up; data written before the crash persists. *)

val read_block : t -> int -> bytes
val write_block : t -> int -> bytes -> unit

val read_bytes : t -> off:int -> len:int -> string
(** Byte-granularity read spanning blocks. *)

val write_bytes : t -> off:int -> string -> unit
(** Byte-granularity write spanning blocks (read-modify-write at the
    edges). *)

val io_ns : t -> int
(** Total simulated nanoseconds spent in I/O so far. *)
