(** Simulated wall clock (nanoseconds), one per simulated machine. *)

type t

val create : unit -> t
val now : t -> int
val advance : t -> int -> unit
(** Advance the clock by some nanoseconds (no-op if non-positive). *)

val on_advance : t -> (int -> unit) -> unit
(** Install the advance hook: [f now_ns] runs after every positive
    {!advance}, with the new time.  One hook per clock (a later call
    replaces the earlier); the hook must not advance the clock.  This is
    how pvmon's scrape loop observes simulated time without the clock
    depending on the monitor. *)

val ns_of_ms : int -> int
val ns_of_us : int -> int

val seconds : t -> float
(** Current time in seconds, for reports. *)
