(* passctl: a command-line front end to the PASSv2 reproduction.

     dune exec bin/passctl.exe -- <command> [args]

   Commands:
     demo                      run the Figure 1 scenario and print the layered query
     query  <pql>              run a PQL query against a canned challenge-workflow run
     workload <name> [--mode]  run one Table 2 workload and print timing/space stats
     recordtypes               print the Table 1 record-type registry
     stats [--filter PREFIX]   print a telemetry snapshot of a canned run as JSON
     trace <name> [--json]     run one workload traced and print the span recording
     recover [VOLUME] [--json]  crash a volume mid-write and print the recovery report *)

module Record = Pass_core.Record
module Dpapi = Pass_core.Dpapi
module Ctx = Pass_core.Ctx
module Clock = Simdisk.Clock
module Disk = Simdisk.Disk

let ok = function Ok v -> v | Error e -> failwith (Vfs.errno_to_string e)

(* A canned local challenge run whose database queries operate on. *)
let canned_db () =
  let sys = System.create ~mode:System.Pass ~machine:1 ~volume_names:[ "vol0" ] () in
  let pid = Kernel.fork (System.kernel sys) ~parent:Kernel.init_pid in
  let io = Kepler_run.io_of_system sys ~pid in
  Challenge.prepare_inputs ~input_dir:"/vol0/inputs" io;
  ignore
    (Kepler_run.run sys ~pid
       (Challenge.workflow ~input_dir:"/vol0/inputs" ~output_dir:"/vol0/results")
      : Director.result);
  ignore (System.drain sys : int);
  Option.get (System.waldo_db sys "vol0")

(* --- commands ----------------------------------------------------------------- *)

let cmd_demo () =
  let sys = System.create ~mode:System.Pass ~machine:1 ~volume_names:[ "local" ] () in
  let clock = System.clock sys in
  let ctx = Kernel.ctx (System.kernel sys) in
  let server_a = Server.create ~mode:Server.Pass_enabled ~clock ~machine:21 ~volume:"nfsA" () in
  let server_b = Server.create ~mode:Server.Pass_enabled ~clock ~machine:22 ~volume:"nfsB" () in
  let net = Proto.net clock in
  let ca = Client.create ~net ~handler:(Server.handle server_a) ~ctx ~mount_name:"nfsA" () in
  let cb = Client.create ~net ~handler:(Server.handle server_b) ~ctx ~mount_name:"nfsB" () in
  System.mount_external sys ~name:"nfsA" ~ops:(Client.ops ca) ~endpoint:(Client.endpoint ca)
    ~file_handle:(Client.file_handle ca)
    ~flush:(fun () -> Client.flush ca) ();
  System.mount_external sys ~name:"nfsB" ~ops:(Client.ops cb) ~endpoint:(Client.endpoint cb)
    ~file_handle:(Client.file_handle cb)
    ~flush:(fun () -> Client.flush cb) ();
  let engine = Kernel.fork (System.kernel sys) ~parent:Kernel.init_pid in
  let io = Kepler_run.io_of_system sys ~pid:engine in
  Challenge.prepare_inputs ~input_dir:"/nfsA/inputs" io;
  ignore
    (Kepler_run.run sys ~pid:engine
       (Challenge.workflow ~input_dir:"/nfsA/inputs" ~output_dir:"/nfsB/results")
      : Director.result);
  ignore (System.drain sys : int);
  ignore (Server.drain server_a : int);
  ignore (Server.drain server_b : int);
  let merged = Provdb.create () in
  Provdb.merge_into ~dst:merged ~src:(Option.get (System.waldo_db sys "local"));
  Provdb.merge_into ~dst:merged ~src:(Option.get (Server.db server_a));
  Provdb.merge_into ~dst:merged ~src:(Option.get (Server.db server_b));
  let query =
    {|select Ancestor from Provenance.file as Atlas Atlas.input* as Ancestor
      where Atlas.name = "atlas-x.gif"|}
  in
  print_endline "Figure 1 scenario: Kepler on a workstation, inputs on server A, outputs on B";
  Printf.printf "query: %s\n\n" query;
  let prepared = Pql.Engine.prepare merged query in
  let rows = Pql.Engine.execute prepared in
  Format.printf "%a@." (Pql.pp_rows merged ~columns:(Pql.Engine.columns prepared)) rows

(* Shared by `query`: run one PQL string against [db], rendering the
   result per the flags.  Pql errors go to stderr and exit 1, matching
   the other subcommands' error discipline. *)
let run_query db q ~explain ~json =
  match
    let prepared = Pql.Engine.prepare db q in
    let rows = Pql.Engine.execute prepared in
    (prepared, rows)
  with
  | exception Pql.Error kind ->
      Printf.eprintf "passctl query: %s\n" (Pql.error_message kind);
      exit 1
  | prepared, rows ->
      let columns = Pql.Engine.columns prepared in
      if json then begin
        let open Telemetry.Json in
        let fields =
          [
            ("query", Str (Pql.Engine.text prepared));
            ("columns", List (Stdlib.List.map (fun c -> Str c) columns));
            ( "rows",
              List
                (Stdlib.List.map
                   (fun r -> List (Stdlib.List.map (fun cell -> Str cell) r))
                   (Pql.render db rows)) );
            ("row_count", Int (Stdlib.List.length rows));
          ]
        in
        let fields =
          if explain then
            fields @ [ ("plan", Str (Pql_plan.to_string (Pql.Engine.explain prepared))) ]
          else fields
        in
        print_endline (to_string (Obj fields))
      end
      else begin
        (* execute has filled in actual cardinalities, so --explain shows
           estimated vs. actual side by side *)
        if explain then Format.printf "%a@.@." Pql_plan.pp (Pql.Engine.explain prepared);
        Format.printf "%a@." (Pql.pp_rows db ~columns) rows
      end

let cmd_query q explain json = run_query (canned_db ()) q ~explain ~json

let cmd_recordtypes () = Report.table1 Format.std_formatter

let cmd_workload name mode =
  let wls = Runner.standard () in
  match List.find_opt (fun w -> String.lowercase_ascii w.Runner.wl_name = name) wls with
  | None ->
      Printf.eprintf "unknown workload %S; try: %s\n" name
        (String.concat ", " (List.map (fun w -> String.lowercase_ascii w.Runner.wl_name) wls));
      exit 1
  | Some w -> (
      match mode with
      | `Both ->
          let row = Runner.measure_local w in
          Printf.printf "%s: ext3 %.2fs, PASSv2 %.2fs, overhead %.1f%%\n" row.Runner.r_name
            row.base_seconds row.pass_seconds row.overhead_pct;
          let sp = Runner.measure_space w in
          Printf.printf "space: data %.1f MB, provenance %.2f MB (%.1f%%), +indexes %.2f MB (%.1f%%)\n"
            sp.Runner.ext3_mb sp.prov_mb sp.prov_pct sp.total_mb sp.total_pct
      | `Nfs ->
          let row = Runner.measure_nfs w in
          Printf.printf "%s: NFS %.2fs, PA-NFS %.2fs, overhead %.1f%%\n" row.Runner.r_name
            row.base_seconds row.pass_seconds row.overhead_pct)

(* A canned two-run scenario for the diff command: the challenge workflow
   run twice with one input modified in between (§3.1). *)
let cmd_diff () =
  let sys = System.create ~mode:System.Pass ~machine:1 ~volume_names:[ "vol0" ] () in
  let pid = Kernel.fork (System.kernel sys) ~parent:Kernel.init_pid in
  let io = Kepler_run.io_of_system sys ~pid in
  Challenge.prepare_inputs ~input_dir:"/vol0/inputs" io;
  let wf = Challenge.workflow ~input_dir:"/vol0/inputs" ~output_dir:"/vol0/results" in
  ignore (Kepler_run.run sys ~pid wf : Director.result);
  ignore (System.drain sys : int);
  let db = Option.get (System.waldo_db sys "vol0") in
  let atlas = List.hd (Provdb.find_by_name db "atlas-x.gif") in
  let v_first = (Option.get (Provdb.find_node db atlas)).Provdb.max_version in
  io.Actor.write_file "/vol0/inputs/anatomy2.img" "anatomy-image-2-MODIFIED";
  ignore (Kepler_run.run sys ~pid wf : Director.result);
  ignore (System.drain sys : int);
  let v_second = (Option.get (Provdb.find_node db atlas)).Provdb.max_version in
  Printf.printf
    "ran the challenge workflow twice (anatomy2.img modified in between);\n\
     ancestry diff of atlas-x.gif v%d vs v%d, files only:\n\n" v_first v_second;
  let d = Provdiff.diff_versions db atlas ~version_a:v_first ~version_b:v_second in
  Format.printf "%a@." Provdiff.pp (Provdiff.files_only db d)

let cmd_export target =
  let db = canned_db () in
  let roots = match target with "" -> None | name -> Some (Provdb.find_by_name db name) in
  (match roots with
  | Some [] ->
      Printf.eprintf "no object named %S in the canned run\n" target;
      exit 1
  | _ -> ());
  print_string (Provdot.to_dot ?roots db)

let cmd_opm () =
  let db = canned_db () in
  print_string (Opm.to_string db)

(* Build a canned crashed volume (named [volume]), then run Recovery.scan
   over its remounted lower file system and print the report. *)
let cmd_recover volume json =
  let clock = Clock.create () in
  let disk = Disk.create ~clock () in
  let ext3 = Ext3.format disk in
  let ctx = Ctx.create ~machine:1 in
  let lasagna =
    Lasagna.create ~lower:(Ext3.ops ext3) ~ctx ~volume ~charge:(Clock.advance clock) ()
  in
  let ops = Lasagna.ops lasagna in
  let ep = Lasagna.endpoint lasagna in
  let ino = ok (Vfs.create_path ops "/victim" Vfs.Regular) in
  let h = ok (Lasagna.file_handle lasagna ino) in
  Disk.schedule_crash disk ~after_writes:3;
  (match
     ep.pass_write h ~off:0 ~data:(Some (String.make 8192 'x'))
       [ Dpapi.entry h [ Record.name "victim" ] ]
   with
  | Error Dpapi.Ecrashed -> if not json then print_endline "crashed mid-write"
  | _ -> if not json then print_endline "unexpected");
  Disk.revive disk;
  let remounted = Ext3.mount disk in
  let report = ok (Recovery.scan (Ext3.ops remounted)) in
  if json then
    print_endline
      (Telemetry.Json.to_string
         (Telemetry.Json.Obj
            [ ("volume", Telemetry.Json.Str volume);
              ("report", Recovery.report_to_json report) ]))
  else begin
    Printf.printf "volume: %s\n" volume;
    Format.printf "%a@." Recovery.pp_report report;
    List.iter
      (fun (i : Recovery.inconsistency) ->
        Printf.printf "inconsistent: pnode=%d off=%d len=%d (%s)\n"
          (Pass_core.Pnode.to_int i.i_pnode) i.i_off i.i_len i.reason)
      report.inconsistent;
    List.iter (fun id -> Printf.printf "orphan txn: %d\n" id) report.open_txns
  end

(* Build a canned volume under a retention-mode Waldo, run enough history
   through it to rotate several WAP logs, take a checkpoint, write a
   post-checkpoint suffix, crash the disk, and recover from the MANIFEST —
   printing what bounded recovery actually did (DESIGN §13). *)
let cmd_checkpoint volume json =
  let clock = Clock.create () in
  let disk = Disk.create ~clock () in
  let ext3 = Ext3.format disk in
  let lower = Ext3.ops ext3 in
  let ctx = Ctx.create ~machine:1 in
  let lasagna =
    Lasagna.create ~log_max:2048 ~lower ~ctx ~volume ~charge:(Clock.advance clock) ()
  in
  let waldo = Waldo.create ~policy:Waldo.Manual ~compact_keep:1 ~lower () in
  Waldo.attach waldo lasagna;
  let ops = Lasagna.ops lasagna in
  let ep = Lasagna.endpoint lasagna in
  let write name i =
    let path = "/" ^ name in
    let ino =
      match Vfs.lookup_path ops path with
      | Ok ino -> ino
      | Error _ -> ok (Vfs.create_path ops path Vfs.Regular)
    in
    let h = ok (Lasagna.file_handle lasagna ino) in
    (* each round freezes the previous version first, so the volume
       accumulates real version history for compaction to archive *)
    match
      ep.pass_write h ~off:0 ~data:(Some (String.make 512 (Char.chr (97 + (i mod 26)))))
        [
          Dpapi.entry h
            [
              Record.make Record.Attr.freeze (Pass_core.Pvalue.Int i);
              Record.name name;
            ];
        ]
    with
    | Ok _ -> ()
    | Error e -> failwith (Dpapi.error_to_string e)
  in
  for i = 1 to 4 do
    for f = 0 to 5 do
      write (Printf.sprintf "file%d.dat" f) i
    done
  done;
  ignore (Waldo.finalize waldo lasagna : int);
  (match Waldo.checkpoint waldo with
  | Ok () -> ()
  | Error e -> failwith (Vfs.errno_to_string e));
  (* post-checkpoint traffic: the suffix recovery will replay *)
  for f = 0 to 1 do
    write (Printf.sprintf "file%d.dat" f) 5
  done;
  Lasagna.flush_log lasagna;
  Disk.crash disk;
  Disk.revive disk;
  let remounted = Ext3.mount disk in
  let _w, (info : Waldo.recovery_info) =
    ok (Waldo.recover ~lower:(Ext3.ops remounted) ())
  in
  if json then
    print_endline
      (Telemetry.Json.to_string
         (Telemetry.Json.Obj
            [
              ("volume", Telemetry.Json.Str volume);
              ("gen", Telemetry.Json.Int info.ri_gen);
              ("manifest", Telemetry.Json.Bool info.ri_manifest);
              ("watermark", Telemetry.Json.Int info.ri_watermark);
              ("logs_skipped", Telemetry.Json.Int info.ri_logs_skipped);
              ("logs_replayed", Telemetry.Json.Int info.ri_logs_replayed);
              ("frames_replayed", Telemetry.Json.Int info.ri_frames_replayed);
              ("pending_restored", Telemetry.Json.Int info.ri_pending_restored);
              ("archives", Telemetry.Json.Int info.ri_archives);
            ]))
  else begin
    Printf.printf "volume: %s\n" volume;
    Printf.printf
      "checkpoint gen %d covers logs below %d; recovery skipped %d log(s), \
       replayed %d log(s) / %d frame(s), restored %d in-flight txn(s), %d \
       archive segment(s)\n"
      info.ri_gen info.ri_watermark info.ri_logs_skipped info.ri_logs_replayed
      info.ri_frames_replayed info.ri_pending_restored info.ri_archives
  end

(* Offline verification.  Without --corrupt: build a canned volume whose
   Waldo database has been persisted and whose last transaction is still
   sitting in a live WAP log, then run the offline verifier over the
   lower file system — the real fsck path (load db image, replay logs,
   cross-check orphans against Recovery).  With --corrupt CLASS: seed one
   corruption into a canned graph and show the verifier flagging it. *)
let cmd_fsck volume json corrupt =
  let print_report report =
    if json then
      print_endline (Telemetry.Json.to_string (Pvcheck.report_to_json report))
    else Format.printf "%a@." Pvcheck.pp_report report;
    if Pvcheck.clean report then 0 else 1
  in
  let status =
    match corrupt with
    | Some cname -> (
        match Pvmutate.of_name cname with
        | None ->
            Printf.eprintf "unknown corruption class %S (one of: %s)\n" cname
              (String.concat ", " (List.map Pvmutate.name Pvmutate.all));
            2
        | Some clazz ->
            let db = canned_db () in
            let desc = Pvmutate.inject db clazz in
            if not json then Printf.printf "seeded: %s\n" desc;
            print_report (Pvcheck.check_db ~volume db))
    | None ->
        let clock = Clock.create () in
        let disk = Disk.create ~clock () in
        let ext3 = Ext3.format disk in
        let lower = Ext3.ops ext3 in
        let ctx = Ctx.create ~machine:1 in
        let lasagna = Lasagna.create ~lower ~ctx ~volume ~charge:(Clock.advance clock) () in
        let waldo = Waldo.create ~lower () in
        Waldo.attach waldo lasagna;
        let ops = Lasagna.ops lasagna in
        let ep = Lasagna.endpoint lasagna in
        let ino = ok (Vfs.create_path ops "/report.dat" Vfs.Regular) in
        let h = ok (Lasagna.file_handle lasagna ino) in
        (match
           ep.pass_write h ~off:0 ~data:(Some (String.make 4096 'r'))
             [ Dpapi.entry h [ Record.name "report.dat" ] ]
         with
        | Ok _ -> ()
        | Error e -> failwith (Dpapi.error_to_string e));
        ignore (Waldo.finalize waldo lasagna : int);
        (match Waldo.persist waldo ~dir:"/.waldo" with
        | Ok () -> ()
        | Error e -> failwith (Vfs.errno_to_string e));
        (* one transaction still in a live log when the verifier runs *)
        (match
           Lasagna.write_txn_bundle ~txn:11 lasagna h ~off:0 ~data:None
             [ Dpapi.entry h [ Record.make "PARAMS" (Pass_core.Pvalue.Str "in-flight") ] ]
         with
        | Ok _ -> ()
        | Error e -> failwith (Dpapi.error_to_string e));
        print_report (ok (Pvcheck.fsck ~lower ~volume ()))
  in
  exit status

(* --- cmdliner wiring ----------------------------------------------------------- *)

open Cmdliner

let demo_cmd =
  Cmd.v (Cmd.info "demo" ~doc:"Run the Figure 1 layered-query scenario")
    Term.(const cmd_demo $ const ())

let query_cmd =
  let q =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"PQL" ~doc:"The PQL query to run")
  in
  let explain =
    Arg.(value & flag
         & info [ "explain" ]
             ~doc:"Print the chosen plan (with estimated vs. actual cardinalities) \
                   before the rows.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the result (and plan) as JSON.")
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"Run a PQL query against a canned Provenance-Challenge workflow run")
    Term.(const cmd_query $ q $ explain $ json)

let recordtypes_cmd =
  Cmd.v (Cmd.info "recordtypes" ~doc:"Print the Table 1 record-type registry")
    Term.(const cmd_recordtypes $ const ())

let workload_cmd =
  let wl_name =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME"
           ~doc:"Workload name (linux compile, postmark, mercurial activity, blast, pa-kepler)")
  in
  let nfs = Arg.(value & flag & info [ "nfs" ] ~doc:"Measure the NFS configuration instead") in
  Cmd.v (Cmd.info "workload" ~doc:"Run one Table 2 workload and print measurements")
    Term.(const (fun n f -> cmd_workload n (if f then `Nfs else `Both)) $ wl_name $ nfs)

let diff_cmd =
  Cmd.v
    (Cmd.info "diff"
       ~doc:"Run the challenge workflow twice (one input modified) and diff the ancestries")
    Term.(const cmd_diff $ const ())

let export_cmd =
  let target =
    Arg.(value & pos 0 string "" & info [] ~docv:"NAME"
           ~doc:"Restrict to the ancestry cone of this object (empty = whole graph)")
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Export the canned run's provenance graph as Graphviz dot")
    Term.(const cmd_export $ target)

let opm_cmd =
  Cmd.v
    (Cmd.info "opm"
       ~doc:"Export the canned run's provenance as Open-Provenance-Model XML")
    Term.(const cmd_opm $ const ())

(* Run the canned challenge workflow against a fresh registry and print the
   full telemetry snapshot as JSON — every layer's named instruments plus
   the DPAPI hot-path span histograms.  [filter] restricts the snapshot to
   instruments under a dotted-name prefix (see Telemetry.name_under); trace
   shares the same prefix semantics for span names. *)
let cmd_stats filter =
  let registry = Telemetry.create () in
  let sys =
    System.create ~registry ~mode:System.Pass ~machine:1 ~volume_names:[ "vol0" ] ()
  in
  let pid = Kernel.fork (System.kernel sys) ~parent:Kernel.init_pid in
  let io = Kepler_run.io_of_system sys ~pid in
  Challenge.prepare_inputs ~input_dir:"/vol0/inputs" io;
  ignore
    (Kepler_run.run sys ~pid
       (Challenge.workflow ~input_dir:"/vol0/inputs" ~output_dir:"/vol0/results")
      : Director.result);
  ignore (System.drain sys : int);
  print_endline (Telemetry.to_json ?filter registry)

(* A PREFIX conv that rejects what Telemetry.validate_prefix rejects, so
   `--filter ""` is a usage error instead of silently matching every
   instrument. *)
let prefix_conv =
  let parse s =
    match Telemetry.validate_prefix s with
    | Ok s -> Ok s
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv ~docv:"PREFIX" (parse, Format.pp_print_string)

let filter_arg ~what =
  Arg.(value & opt (some prefix_conv) None
       & info [ "filter" ] ~docv:"PREFIX"
           ~doc:(Printf.sprintf
                   "Keep only %s under this dotted-name prefix (e.g. \
                    \"analyzer\" or \"panfs.client\").  Must be non-empty." what))

let stats_cmd =
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Run the canned challenge workflow and print its telemetry snapshot as JSON")
    Term.(const cmd_stats $ filter_arg ~what:"instruments")

(* Run one workload under an enabled tracer and export the flight
   recorder.  Local PASS configuration by default; --nfs swaps in the
   PA-NFS client/server pair, whose server spans parent onto client RPC
   spans across the simulated wire. *)
let cmd_trace name nfs json filter =
  let wls = Runner.standard () in
  match List.find_opt (fun w -> String.lowercase_ascii w.Runner.wl_name = name) wls with
  | None ->
      Printf.eprintf "unknown workload %S; try: %s\n" name
        (String.concat ", " (List.map (fun w -> String.lowercase_ascii w.Runner.wl_name) wls));
      exit 1
  | Some w ->
      let tracer = Pvtrace.create () in
      if nfs then begin
        let sys, server = Runner.nfs_system ~tracer System.Pass in
        w.Runner.run sys;
        ignore (System.drain sys : int);
        ignore (Server.drain server : int)
      end
      else begin
        let sys = Runner.local_system ~tracer System.Pass in
        w.Runner.run sys;
        ignore (System.drain sys : int)
      end;
      if json then
        print_endline (Telemetry.Json.to_string (Pvtrace.to_json ?filter tracer))
      else print_endline (Pvtrace.to_chrome ?filter tracer)

let trace_cmd =
  let wl_name =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME"
           ~doc:"Workload name (linux compile, postmark, mercurial activity, blast, pa-kepler)")
  in
  let nfs =
    Arg.(value & flag & info [ "nfs" ] ~doc:"Trace the PA-NFS configuration instead")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit pvtrace/v1 JSON instead of Chrome trace-event format")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run one workload with tracing on and print the span flight recorder \
             (Chrome trace-event JSON by default; load it in Perfetto)")
    Term.(const cmd_trace $ wl_name $ nfs $ json $ filter_arg ~what:"spans")

(* Run one workload with the monitor (and the tracer it folds) enabled,
   ending with a forced scrape so end-of-run gauge values are captured,
   and hand back the populated monitor. *)
let run_monitored name nfs =
  let wls = Runner.standard () in
  match List.find_opt (fun w -> String.lowercase_ascii w.Runner.wl_name = name) wls with
  | None ->
      Printf.eprintf "unknown workload %S; try: %s\n" name
        (String.concat ", " (List.map (fun w -> String.lowercase_ascii w.Runner.wl_name) wls));
      exit 1
  | Some w ->
      let registry = Telemetry.create () in
      let tracer = Pvtrace.create () in
      let monitor = Pvmon.create () in
      let sys =
        if nfs then begin
          let sys, server = Runner.nfs_system ~registry ~tracer ~monitor System.Pass in
          w.Runner.run sys;
          ignore (System.drain sys : int);
          ignore (Server.drain server : int);
          sys
        end
        else begin
          let sys = Runner.local_system ~registry ~tracer ~monitor System.Pass in
          w.Runner.run sys;
          ignore (System.drain sys : int);
          sys
        end
      in
      Pvmon.scrape monitor (System.Clock.now (System.clock sys));
      monitor

let cmd_monitor name nfs json flamegraph =
  let monitor = run_monitored name nfs in
  if json then print_endline (Telemetry.Json.to_string (Pvmon.to_json monitor))
  else if flamegraph then print_string (Pvmon.to_flamegraph monitor)
  else print_string (Pvmon.to_openmetrics monitor)

let monitor_cmd =
  let wl_name =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME"
           ~doc:"Workload name (linux compile, postmark, mercurial activity, blast, pa-kepler)")
  in
  let nfs =
    Arg.(value & flag & info [ "nfs" ] ~doc:"Monitor the PA-NFS configuration instead")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the pvmon/v1 JSON artifact instead of OpenMetrics text")
  in
  let flamegraph =
    Arg.(value & flag
         & info [ "flamegraph" ]
             ~doc:"Emit collapsed call stacks (exact per-layer self times) for \
                   flamegraph.pl or speedscope instead of OpenMetrics text")
  in
  Cmd.v
    (Cmd.info "monitor"
       ~doc:"Run one workload under pvmon and print its metrics exposition \
             (OpenMetrics text by default — Prometheus-scrapable; --json for \
             the full pvmon/v1 artifact with time series, attribution, \
             alerts and slow ops; --flamegraph for collapsed stacks)")
    Term.(const cmd_monitor $ wl_name $ nfs $ json $ flamegraph)

let cmd_top name nfs =
  let monitor = run_monitored name nfs in
  let total = Pvmon.traced_total_ns monitor in
  let ms ns = float_of_int ns /. 1e6 in
  Printf.printf "%-12s %12s %12s %7s %8s\n" "layer" "self(ms)" "total(ms)" "self%" "spans";
  List.iter
    (fun r ->
      Printf.printf "%-12s %12.3f %12.3f %6.1f%% %8d\n" r.Pvmon.lr_layer
        (ms r.Pvmon.lr_self_ns) (ms r.Pvmon.lr_total_ns)
        (if total = 0 then 0.
         else 100. *. float_of_int r.Pvmon.lr_self_ns /. float_of_int total)
        r.Pvmon.lr_spans)
    (Pvmon.attribution monitor);
  Printf.printf "%-12s %12.3f %12s %6.1f%% %8d\n" "traced" (ms total) "" 100.
    (Pvmon.traced_spans monitor);
  match Pvmon.firing monitor with
  | [] -> ()
  | rules -> Printf.printf "firing: %s\n" (String.concat ", " rules)

let top_cmd =
  let wl_name =
    Arg.(value & pos 0 string "postmark" & info [] ~docv:"NAME"
           ~doc:"Workload name (default postmark)")
  in
  let nfs =
    Arg.(value & flag & info [ "nfs" ] ~doc:"Profile the PA-NFS configuration instead")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"Run one workload under pvmon and print the per-layer self/total \
             time table (exact attribution folded from the span stream)")
    Term.(const cmd_top $ wl_name $ nfs)

let recover_cmd =
  let volume =
    Arg.(value & pos 0 string "vol0" & info [] ~docv:"VOLUME" ~doc:"Volume name to recover.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the recovery report as JSON.")
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:"Crash a volume mid-write, then run WAP recovery and print the report")
    Term.(const cmd_recover $ volume $ json)

let checkpoint_cmd =
  let volume =
    Arg.(value & pos 0 string "vol0" & info [] ~docv:"VOLUME" ~doc:"Volume name to checkpoint.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the recovery summary as JSON.")
  in
  Cmd.v
    (Cmd.info "checkpoint"
       ~doc:"Checkpoint a canned volume, crash it, and show bounded recovery \
             replaying only the post-watermark log suffix")
    Term.(const cmd_checkpoint $ volume $ json)

let fsck_cmd =
  let volume =
    Arg.(value & pos 0 string "vol0" & info [] ~docv:"VOLUME" ~doc:"Volume name to verify.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.") in
  let corrupt =
    Arg.(value & opt (some string) None
         & info [ "corrupt" ] ~docv:"CLASS"
             ~doc:"Seed one corruption class first (cycle, dangling-ancestor, \
                   duplicate-record, broken-version-chain, dangling-xref).")
  in
  Cmd.v
    (Cmd.info "fsck"
       ~doc:"Verify a volume's stored provenance graph offline (exit 1 on findings)")
    Term.(const cmd_fsck $ volume $ json $ corrupt)

(* Both static analyzers in-process (no subprocess spawning), sharing
   the exact implementation CI runs: passlint's per-file convention
   rules, then passarch's whole-tree layer-contract passes. *)
let cmd_lint json stale =
  let lint = Passlint_core.run ~json ~stale_check:stale () in
  let arch = Passarch_core.run ~json ~stale_check:stale () in
  exit (max lint arch)

let lint_cmd =
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit findings as JSON.") in
  let stale =
    Arg.(value & flag
         & info [ "stale-allowlist" ]
             ~doc:"Also fail when an allowlist entry matches no finding.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Run passlint and passarch over the tree (run from the repo \
             root; exit 1 on findings)")
    Term.(const cmd_lint $ json $ stale)

let () =
  let info =
    Cmd.info "passctl" ~version:"1.0"
      ~doc:"PASSv2 reproduction: layered provenance collection and query"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ demo_cmd; query_cmd; recordtypes_cmd; workload_cmd; stats_cmd; trace_cmd;
            monitor_cmd; top_cmd; diff_cmd; export_cmd; opm_cmd; recover_cmd;
            checkpoint_cmd; fsck_cmd; lint_cmd ]))
