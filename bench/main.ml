(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (Section 7), runs the ablation studies DESIGN.md
   calls out, and finishes with Bechamel microbenchmarks of the hot paths.

   Sections:
     FIG2     architecture self-check (the seven PASSv2 components)
     TABLE1   record types per PA application
     TABLE2   elapsed-time overheads, ext3 vs PASSv2 and NFS vs PA-NFS
     TABLE3   space overheads
     FIG1/PQL the layered two-server scenario + the paper's sample query
     ABLATION cycle avoidance vs PASSv1 detection; dedup; WAP; NFS txns
     MICRO    Bechamel microbenchmarks (one per table) *)

module Record = Pass_core.Record
module Pvalue = Pass_core.Pvalue
module Ctx = Pass_core.Ctx
module Dpapi = Pass_core.Dpapi
module Analyzer = Pass_core.Analyzer
module Cycle_detect = Pass_core.Cycle_detect

let section name = Printf.printf "\n==================== %s ====================\n" name

(* fire-and-forget disclose: benchmarks drive the analyzer for its side
   effects and drop the (always-Ok) result with the type pinned *)
let disclose_ ep h records =
  let _ : (unit, Dpapi.error) result = Dpapi.disclose ep h records in
  ()

module J = Telemetry.Json

(* --- FIG 2: architecture self-check ---------------------------------------- *)

let fig2 () =
  section "FIG2: PASSv2 architecture";
  let sys = System.create ~mode:System.Pass ~machine:1 ~volume_names:[ "vol0" ] () in
  let stack = Option.get (Kernel.pass_stack (System.kernel sys)) in
  let volume = List.hd (System.volumes sys) in
  let checks =
    [
      ("libpass (user-level DPAPI)", System.app_endpoint sys ~pid:Kernel.init_pid <> None);
      ("interceptor (syscall hooks)", Kernel.pass_stack (System.kernel sys) <> None);
      ("observer", (Pass_core.Observer.stats stack.Kernel.observer).events = 0);
      ("analyzer", (Analyzer.stats stack.Kernel.analyzer).records_in = 0);
      ("distributor", Pass_core.Distributor.cached_object_count stack.Kernel.distributor = 0);
      ("lasagna (PA file system)", volume.System.v_lasagna <> None);
      ("waldo (log -> database daemon)", volume.System.v_waldo <> None);
    ]
  in
  List.iter (fun (name, ok) -> Printf.printf "  [%s] %s\n" (if ok then "ok" else "??") name) checks;
  Printf.printf "  DPAPI chain: libpass -> observer -> analyzer -> distributor -> lasagna -> waldo\n"

(* --- TABLE 2 / TABLE 3 ------------------------------------------------------ *)

let paper_table2 =
  (* (name, local overhead %, nfs overhead %) as published *)
  [
    ("Linux Compile", 15.6, 1.0);
    ("Postmark", 11.5, 16.8);
    ("Mercurial Activity", 23.1, 8.7);
    ("Blast", 0.7, 1.9);
    ("PA-Kepler", 1.4, 2.5);
  ]

let table2_and_3 () =
  section "TABLE2: elapsed-time overheads";
  (* PASS_BENCH_SCALE scales workload op counts (1.0 = default; the paper's
     full sizes are ~10x) *)
  let scale =
    match Sys.getenv_opt "PASS_BENCH_SCALE" with
    | Some s -> (try float_of_string s with _ -> 1.0)
    | None -> 1.0
  in
  if scale <> 1.0 then Printf.printf "(workload scale: %.2fx)\n" scale;
  (* one registry across all PASS-configuration runs: the embedded
     telemetry snapshot describes the whole benchmark's pipeline work *)
  let registry = Telemetry.create () in
  let wls = Runner.standard ~scale () in
  let local = List.map (Runner.measure_local ~registry) wls in
  let nfs = List.map (Runner.measure_nfs ~registry) wls in
  Report.table2 Format.std_formatter ~local ~nfs;
  Printf.printf "\nPaper-reported overheads for comparison (shape, not absolute numbers):\n";
  List.iter
    (fun (name, l, n) -> Printf.printf "  %-20s local %5.1f%%   nfs %5.1f%%\n" name l n)
    paper_table2;
  section "TABLE3: space overheads";
  let rows = List.map Runner.measure_space wls in
  Report.table3 Format.std_formatter ~rows;
  Printf.printf
    "\nPaper-reported: Linux Compile 6.9%%/18.4%%, Postmark 0.1%%/0.1%%, Mercurial 1.8%%/3.4%%,\n\
    \                Blast 1.1%%/3.8%%, PA-Kepler 4.7%%/14.2%% (provenance / +indexes)\n";
  (scale, registry, local, nfs, rows)

(* --- FIG 1 + the paper's PQL query ------------------------------------------ *)

let fig1 () =
  section "FIG1: layered query across two NFS servers and a workstation";
  let sys = System.create ~mode:System.Pass ~machine:1 ~volume_names:[ "local" ] () in
  let clock = System.clock sys in
  let ctx = Kernel.ctx (System.kernel sys) in
  let server_a = Server.create ~mode:Server.Pass_enabled ~clock ~machine:21 ~volume:"nfsA" () in
  let server_b = Server.create ~mode:Server.Pass_enabled ~clock ~machine:22 ~volume:"nfsB" () in
  let net = Proto.net clock in
  let ca = Client.create ~net ~handler:(Server.handle server_a) ~ctx ~mount_name:"nfsA" () in
  let cb = Client.create ~net ~handler:(Server.handle server_b) ~ctx ~mount_name:"nfsB" () in
  System.mount_external sys ~name:"nfsA" ~ops:(Client.ops ca) ~endpoint:(Client.endpoint ca)
    ~file_handle:(Client.file_handle ca)
    ~flush:(fun () -> Client.flush ca) ();
  System.mount_external sys ~name:"nfsB" ~ops:(Client.ops cb) ~endpoint:(Client.endpoint cb)
    ~file_handle:(Client.file_handle cb)
    ~flush:(fun () -> Client.flush cb) ();
  (* the workflow engine runs the Provenance Challenge workflow, reading
     inputs from server A and writing the atlas images to server B *)
  let engine = Kernel.fork (System.kernel sys) ~parent:Kernel.init_pid in
  let io = Kepler_run.io_of_system sys ~pid:engine in
  Challenge.prepare_inputs ~input_dir:"/nfsA/inputs" io;
  let wf = Challenge.workflow ~input_dir:"/nfsA/inputs" ~output_dir:"/nfsB/results" in
  ignore (Kepler_run.run sys ~pid:engine wf : Director.result);
  ignore (System.drain sys : int);
  ignore (Server.drain server_a : int);
  ignore (Server.drain server_b : int);
  let merged = Provdb.create () in
  Provdb.merge_into ~dst:merged ~src:(Option.get (System.waldo_db sys "local"));
  Provdb.merge_into ~dst:merged ~src:(Option.get (Server.db server_a));
  Provdb.merge_into ~dst:merged ~src:(Option.get (Server.db server_b));
  let query =
    {|select Ancestor
      from Provenance.file as Atlas
           Atlas.input* as Ancestor
      where Atlas.name = "atlas-x.gif"|}
  in
  Printf.printf "query (paper §5.7):\n%s\n\n" query;
  let pql_names db q = Pql.names_of_rows db Pql.Engine.(execute (prepare db q)) in
  let names = pql_names merged query in
  Printf.printf "ancestors of atlas-x.gif across all three volumes (%d distinct names):\n"
    (List.length names);
  List.iter (fun n -> Printf.printf "  %s\n" n) names;
  let b_only = pql_names (Option.get (Server.db server_b)) query in
  Printf.printf
    "\nwithout layering, server B alone sees %d names (no workflow operators, no inputs)\n"
    (List.length b_only)

(* --- ABLATIONS --------------------------------------------------------------- *)

let null_endpoint ctx =
  {
    Dpapi.pass_read =
      (fun h ~off:_ ~len:_ ->
        Ok { Dpapi.data = ""; r_pnode = h.pnode; r_version = Ctx.current_version ctx h.pnode });
    pass_write = (fun h ~off:_ ~data:_ _ -> Ok (Ctx.current_version ctx h.pnode));
    pass_freeze = (fun h -> Ok (Ctx.freeze ctx h.pnode));
    pass_mkobj = (fun ~volume:_ -> Ok (Dpapi.handle (Ctx.fresh ctx)));
    pass_reviveobj = (fun p _ -> Ok (Dpapi.handle p));
    pass_sync = (fun _ -> Ok ());
  }

let ablation_cycles () =
  section "ABLATION: cycle avoidance (PASSv2) vs global detection (PASSv1)";
  let n = 20_000 in
  let seed = 123 in
  let events =
    (* the workloads' seeded LCG: identical stream on every OCaml version *)
    let st = Wk.rng seed in
    List.init n (fun _ ->
        let b = Wk.rand st 2 = 1 in
        let p = Wk.rand st 40 in
        let f = Wk.rand st 40 in
        (b, p, f))
  in
  (* PASSv2: the analyzer's local rule *)
  let ctx = Ctx.create ~machine:1 in
  let an = Analyzer.create ~ctx ~lower:(null_endpoint ctx) () in
  let ep = Analyzer.endpoint an in
  let procs = Array.init 40 (fun _ -> Dpapi.handle (Ctx.fresh ctx)) in
  let files = Array.init 40 (fun _ -> Dpapi.handle ~volume:"v" (Ctx.fresh ctx)) in
  let t0 = Sys.time () in
  List.iter
    (fun (is_read, pi, fi) ->
      let p = procs.(pi) and f = files.(fi) in
      if is_read then
        disclose_ ep p [ Record.input_of f.pnode (Ctx.current_version ctx f.pnode) ]
      else
        disclose_ ep f [ Record.input_of p.pnode (Ctx.current_version ctx p.pnode) ])
    events;
  let v2_time = Sys.time () -. t0 in
  let v2 = Analyzer.stats an in
  (* PASSv1: global graph + DFS + merge *)
  let cd = Cycle_detect.create () in
  let pnode i = Pass_core.Pnode.of_int (i + 1) in
  let t0 = Sys.time () in
  List.iter
    (fun (is_read, pi, fi) ->
      if is_read then Cycle_detect.add_edge cd (pnode pi, 0) (pnode (fi + 100), 0)
      else Cycle_detect.add_edge cd (pnode (fi + 100), 0) (pnode pi, 0))
    events;
  let v1_time = Sys.time () -. t0 in
  Printf.printf "  %d read/write events over 40 processes x 40 files\n" n;
  Printf.printf
    "  PASSv2 cycle avoidance: %d freezes (extra versions), %d adoptions avoided a freeze, %.2f us/event\n"
    v2.Analyzer.freezes v2.Analyzer.adoptions
    (v2_time *. 1e6 /. float_of_int n);
  Printf.printf "  PASSv1 global detection: %d merges, %d DFS probe steps, %.2f us/event\n"
    (Cycle_detect.merges cd) (Cycle_detect.probe_steps cd)
    (v1_time *. 1e6 /. float_of_int n);
  Printf.printf "  (v1 merges lose object identity; v2 pays with extra versions instead)\n"

let ablation_dedup () =
  section "ABLATION: analyzer duplicate elimination on/off";
  let run dedup =
    let ctx = Ctx.create ~machine:1 in
    let writes = ref 0 in
    let records = ref 0 in
    let base = null_endpoint ctx in
    let counting =
      {
        base with
        Dpapi.pass_write =
          (fun h ~off:_ ~data:_ bundle ->
            incr writes;
            List.iter
              (fun (e : Dpapi.bundle_entry) -> records := !records + List.length e.records)
              bundle;
            Ok (Ctx.current_version ctx h.pnode));
      }
    in
    let an = Analyzer.create ~dedup ~ctx ~lower:counting () in
    let ep = Analyzer.endpoint an in
    let f = Dpapi.handle ~volume:"v" (Ctx.fresh ctx) in
    let p = Dpapi.handle (Ctx.fresh ctx) in
    (* a process writing a 4 MB file in 4 KB chunks: 1024 identical records *)
    for _ = 1 to 1024 do
      disclose_ ep f [ Record.input_of p.pnode 0 ]
    done;
    (!writes, !records)
  in
  let w_on, r_on = run true in
  let w_off, r_off = run false in
  Printf.printf "  1024 chunked writes of one file by one process:\n";
  Printf.printf "  dedup on:  %4d storage writes, %4d records\n" w_on r_on;
  Printf.printf "  dedup off: %4d storage writes, %4d records  (%.0fx amplification)\n" w_off
    r_off
    (float_of_int r_off /. float_of_int (max 1 r_on))

let ablation_wap () =
  section "ABLATION: WAP log vs PASSv1-style direct database writes";
  let sys = System.create ~mode:System.Pass ~machine:1 ~volume_names:[ "vol0" ] () in
  Kepler_wl.run sys ~parent:Kernel.init_pid;
  ignore (System.drain sys : int);
  let sp = System.space sys in
  Printf.printf "  PA-Kepler workload, provenance bytes on the critical path:\n";
  Printf.printf "  PASSv2 (WAP log, database deferred to Waldo): %7d bytes\n"
    sp.System.sp_prov_log_bytes;
  Printf.printf "  PASSv1 (database + indexes written in-line):  %7d bytes (%.1fx)\n"
    (sp.System.sp_db_bytes + sp.System.sp_index_bytes)
    (float_of_int (sp.System.sp_db_bytes + sp.System.sp_index_bytes)
    /. float_of_int (max 1 sp.System.sp_prov_log_bytes))

let ablation_nfs_txn () =
  section "ABLATION: PA-NFS transaction encapsulation";
  let clock = Simdisk.Clock.create () in
  let server = Server.create ~mode:Server.Pass_enabled ~clock ~machine:9 ~volume:"nfs0" () in
  let net = Proto.net clock in
  let ctx = Ctx.create ~machine:8 in
  let client = Client.create ~net ~handler:(Server.handle server) ~ctx ~mount_name:"nfs0" () in
  let ino =
    match Vfs.write_file (Client.ops client) "/big" "seed" with
    | Ok ino -> ino
    | Error _ -> failwith "setup"
  in
  let h = match Client.file_handle client ino with Ok h -> h | Error _ -> failwith "handle" in
  let records =
    List.init 4000 (fun i -> Record.make "PARAMS" (Pvalue.Str (Printf.sprintf "p%06d" i)))
  in
  let before = net.Proto.messages in
  (match Client.pass_write client h ~off:0 ~data:(Some "payload") [ Dpapi.entry h records ] with
  | Ok _ -> ()
  | Error e -> failwith (Dpapi.error_to_string e));
  (* each RPC is two datagrams on the wire (request + response) *)
  let rpcs = (net.Proto.messages - before) / 2 in
  let prov_bytes = Dpapi.bundle_size [ Dpapi.entry h records ] in
  Printf.printf "  one pass_write with %d bytes of provenance (> 64 KB block size):\n" prov_bytes;
  Printf.printf "  RPCs used: %d (OP_BEGINTXN + %d OP_PASSPROV chunks + OP_PASSWRITE)\n"
    rpcs (rpcs - 2);
  Printf.printf "  orphan cleanup: a client crash mid-transaction leaves provenance that\n";
  Printf.printf "  Waldo discards — see test 'client crash orphans are discarded'\n"

(* --- fault injection: overhead when disabled + chaos counters ---------------- *)

(* A short PA-NFS workload shared by the three fault configurations:
   32 creates + provenance-carrying writes through the client, then drain
   the write-behind backlog once faults clear.  Returns elapsed simulated
   nanoseconds. *)
let fault_workload ~registry ~fault =
  let clock = Simdisk.Clock.create () in
  let server =
    Server.create ~registry ~fault ~mode:Server.Pass_enabled ~clock ~machine:9 ~volume:"nfs0" ()
  in
  let net = Proto.net ~fault clock in
  let ctx = Ctx.create ~machine:8 in
  let client = Client.create ~registry ~net ~handler:(Server.handle server) ~ctx ~mount_name:"nfs0" () in
  for i = 0 to 31 do
    match Vfs.create_path (Client.ops client) (Printf.sprintf "/f%02d" i) Vfs.Regular with
    | Error _ -> ()
    | Ok ino -> (
        match Client.file_handle client ino with
        | Error _ -> ()
        | Ok h ->
            let _ : (int, Dpapi.error) result =
              Client.pass_write client h ~off:0
                ~data:(Some (String.make 256 'x'))
                [ Dpapi.entry h [ Record.name (Printf.sprintf "f%02d" i) ] ]
            in
            ())
  done;
  Fault.deactivate fault;
  let _ : (unit, Dpapi.error) result = Client.drain_backlog client in
  Simdisk.Clock.now clock

let fault_bench () =
  section "FAULTS: disabled-path overhead + chaos counters";
  let disabled_ns = fault_workload ~registry:(Telemetry.create ()) ~fault:Fault.none in
  let quiet_ns =
    fault_workload ~registry:(Telemetry.create ())
      ~fault:(Fault.plan ~spec:Fault.quiet ~seed:1 ())
  in
  let quiet_free = disabled_ns = quiet_ns in
  let seed = 11 in
  let chaos_registry = Telemetry.create () in
  let chaos = Fault.plan ~registry:chaos_registry ~spec:Fault.default_chaos ~seed () in
  let chaos_ns = fault_workload ~registry:chaos_registry ~fault:chaos in
  let tv name = Option.value (Telemetry.counter_value chaos_registry name) ~default:0 in
  let counter_names =
    [ "fault.injected.total"; "nfs.retries"; "nfs.drc.hits"; "nfs.drc.misses";
      "nfs.backpressure"; "nfs.txns_abandoned"; "lasagna.io_retries" ]
  in
  Printf.printf "  empty fault plan vs no plan: %d ns vs %d ns  %s\n" quiet_ns disabled_ns
    (if quiet_free then "(identical — hooks are free when quiet)" else "MISMATCH");
  Printf.printf "  chaos run (seed %d): %d ns, schedule digest %s\n" seed chaos_ns
    (Fault.digest chaos);
  List.iter (fun n -> Printf.printf "  %-24s %6d\n" n (tv n)) counter_names;
  let json =
    J.Obj
      [
        ("seed", J.Int seed);
        ("disabled_ns", J.Int disabled_ns);
        ("quiet_ns", J.Int quiet_ns);
        ("quiet_equals_disabled", J.Bool quiet_free);
        ("chaos_ns", J.Int chaos_ns);
        ("chaos_digest", J.Str (Fault.digest chaos));
        ("counters", J.Obj (List.map (fun n -> (n, J.Int (tv n))) counter_names));
      ]
  in
  (quiet_free, json)

(* --- tracing: artifact + disabled-overhead gate ------------------------------ *)

let trace_file = "TRACE_events.json"

(* Run the scaled Postmark workload through the PA-NFS configuration with
   tracing off and on.  Gates: the disabled tracer records nothing; the
   enabled run finishes at the same simulated instant (recording charges
   no simulated time); it records spans; every surviving parent resolves;
   every panfs.server span parents onto a panfs.client span; and a second
   identical run exports byte-identical Chrome JSON.  The enabled run's
   flight recorder is written out as the trace artifact CI uploads. *)
let trace_bench ~scale =
  section "TRACE: pvtrace artifact + disabled-overhead gate";
  let w =
    List.find (fun w -> w.Runner.wl_name = "Postmark") (Runner.standard ~scale ())
  in
  let run tracer =
    let sys, server = Runner.nfs_system ~tracer System.Pass in
    w.Runner.run sys;
    ignore (System.drain sys : int);
    ignore (Server.drain server : int);
    Simdisk.Clock.now (System.clock sys)
  in
  let off_ns = run Pvtrace.disabled in
  let tracer = Pvtrace.create () in
  let on_ns = run tracer in
  let chrome = Pvtrace.to_chrome tracer in
  let tracer2 = Pvtrace.create () in
  let _ : int = run tracer2 in
  let deterministic = String.equal chrome (Pvtrace.to_chrome tracer2) in
  let spans = Pvtrace.spans tracer in
  let by_id = Hashtbl.create 4096 in
  List.iter (fun (sp : Pvtrace.span) -> Hashtbl.replace by_id sp.Pvtrace.sp_id sp) spans;
  let parents_resolve =
    List.for_all
      (fun (sp : Pvtrace.span) ->
        sp.Pvtrace.sp_parent = 0 || Hashtbl.mem by_id sp.Pvtrace.sp_parent)
      spans
  in
  let server_parents_ok =
    List.for_all
      (fun (sp : Pvtrace.span) ->
        sp.Pvtrace.sp_layer <> "panfs.server"
        ||
        match Hashtbl.find_opt by_id sp.Pvtrace.sp_parent with
        | Some p -> String.equal p.Pvtrace.sp_layer "panfs.client"
        | None -> false)
      spans
  in
  let zero_overhead = off_ns = on_ns && Pvtrace.total Pvtrace.disabled = 0 in
  let count = Pvtrace.total tracer in
  let ok = zero_overhead && count > 0 && parents_resolve && server_parents_ok && deterministic in
  let oc = open_out trace_file in
  output_string oc chrome;
  output_char oc '\n';
  close_out oc;
  let flag b = if b then "ok" else "FAILED" in
  Printf.printf "  postmark via PA-NFS, tracing off vs on: %d ns vs %d ns  %s\n" off_ns on_ns
    (if off_ns = on_ns then "(identical — recording charges no simulated time)"
     else "MISMATCH");
  Printf.printf "  spans recorded: %d (%d evicted by the ring)\n" count (Pvtrace.dropped tracer);
  Printf.printf "  every surviving parent resolves: %s\n" (flag parents_resolve);
  Printf.printf "  server spans parent onto client RPC spans: %s\n" (flag server_parents_ok);
  Printf.printf "  byte-identical export across identical runs: %s\n" (flag deterministic);
  Printf.printf "  wrote %s\n" trace_file;
  let json =
    J.Obj
      [
        ("workload", J.Str "Postmark");
        ("off_ns", J.Int off_ns);
        ("on_ns", J.Int on_ns);
        ("zero_overhead", J.Bool zero_overhead);
        ("spans", J.Int count);
        ("dropped", J.Int (Pvtrace.dropped tracer));
        ("parents_resolve", J.Bool parents_resolve);
        ("server_parents_on_client", J.Bool server_parents_ok);
        ("deterministic", J.Bool deterministic);
        ("artifact", J.Str trace_file);
      ]
  in
  (ok, json)

(* --- MONITOR: pvmon metrics + attribution gates ------------------------------ *)

let pvmon_file = "PVMON_report.json"

(* Run Postmark over PA-NFS and Mercurial locally with pvmon disabled vs
   enabled; the tracer is on in both runs, so the monitor is the only
   variable.  Gates: [zero_overhead] (both workloads finish at the same
   simulated instant either way, and the disabled singleton never
   scrapes); [conservation] (per-layer self-times sum exactly to the
   traced total — the attribution fold loses nothing); [deterministic]
   (a second identical run exports byte-identical pvmon/v1 JSON and
   OpenMetrics text).  The enabled Postmark run's report is written as
   the artifact CI uploads. *)
let monitor_bench ~scale =
  section "MONITOR: pvmon metrics + SLO health gates";
  let wl name = List.find (fun w -> w.Runner.wl_name = name) (Runner.standard ~scale ()) in
  let postmark = wl "Postmark" and mercurial = wl "Mercurial Activity" in
  let finish monitor sys =
    ignore (System.drain sys : int);
    let now = Simdisk.Clock.now (System.clock sys) in
    if Pvmon.enabled monitor then Pvmon.scrape monitor now;
    now
  in
  (* fresh registry per run: the process-wide default accumulates
     instrument instances from every earlier section, which would make
     the byte-determinism comparison below depend on bench ordering *)
  let run_nfs monitor =
    let sys, server =
      Runner.nfs_system ~registry:(Telemetry.create ()) ~tracer:(Pvtrace.create ())
        ~monitor System.Pass
    in
    postmark.Runner.run sys;
    ignore (System.drain sys : int);
    ignore (Server.drain server : int);
    finish monitor sys
  in
  let run_local monitor =
    let sys =
      Runner.local_system ~registry:(Telemetry.create ()) ~tracer:(Pvtrace.create ())
        ~monitor System.Pass
    in
    mercurial.Runner.run sys;
    finish monitor sys
  in
  let off_nfs = run_nfs Pvmon.disabled in
  let off_local = run_local Pvmon.disabled in
  let mon = Pvmon.create () in
  let on_nfs = run_nfs mon in
  let report = J.to_string (Pvmon.to_json mon) in
  let exposition = Pvmon.to_openmetrics mon in
  let mon2 = Pvmon.create () in
  let _ : int = run_nfs mon2 in
  let mon_l = Pvmon.create () in
  let on_local = run_local mon_l in
  let deterministic =
    String.equal report (J.to_string (Pvmon.to_json mon2))
    && String.equal exposition (Pvmon.to_openmetrics mon2)
  in
  let zero_overhead =
    off_nfs = on_nfs && off_local = on_local && Pvmon.scrapes Pvmon.disabled = 0
  in
  let self_sum m =
    List.fold_left (fun acc r -> acc + r.Pvmon.lr_self_ns) 0 (Pvmon.attribution m)
  in
  let conservation =
    self_sum mon = Pvmon.traced_total_ns mon
    && self_sum mon_l = Pvmon.traced_total_ns mon_l
    && Pvmon.traced_total_ns mon > 0
  in
  let overhead_pct =
    (float_of_int on_nfs -. float_of_int off_nfs) /. float_of_int (max 1 off_nfs) *. 100.
  in
  let ok =
    zero_overhead && conservation && deterministic && Pvmon.scrapes mon > 0
    && Pvmon.scrapes mon_l > 0
  in
  let oc = open_out pvmon_file in
  output_string oc report;
  output_char oc '\n';
  close_out oc;
  let flag b = if b then "ok" else "FAILED" in
  Printf.printf "  postmark via PA-NFS, pvmon off vs on: %d ns vs %d ns  %s\n" off_nfs on_nfs
    (if off_nfs = on_nfs then "(identical — scrapes charge no simulated time)" else "MISMATCH");
  Printf.printf "  mercurial local,   pvmon off vs on: %d ns vs %d ns  %s\n" off_local on_local
    (if off_local = on_local then "(identical)" else "MISMATCH");
  Printf.printf "  scrapes: %d (postmark), %d (mercurial); alerts: %d; slow ops: %d\n"
    (Pvmon.scrapes mon) (Pvmon.scrapes mon_l)
    (List.length (Pvmon.alerts mon))
    (List.length (Pvmon.slow_ops mon));
  Printf.printf "  attribution conservation (Σ self = traced total): %s\n" (flag conservation);
  List.iter
    (fun (r : Pvmon.layer_row) ->
      Printf.printf "    %-10s self %12d ns  total %12d ns  %7d spans\n" r.Pvmon.lr_layer
        r.Pvmon.lr_self_ns r.Pvmon.lr_total_ns r.Pvmon.lr_spans)
    (Pvmon.attribution mon);
  Printf.printf "  byte-identical JSON + OpenMetrics across identical runs: %s\n"
    (flag deterministic);
  Printf.printf "  wrote %s\n" pvmon_file;
  let json =
    J.Obj
      [
        ("workloads", J.List [ J.Str "Postmark"; J.Str "Mercurial Activity" ]);
        ("off_ns", J.Int off_nfs);
        ("on_ns", J.Int on_nfs);
        ("local_off_ns", J.Int off_local);
        ("local_on_ns", J.Int on_local);
        ("zero_overhead", J.Bool zero_overhead);
        ("overhead_pct", J.Float overhead_pct);
        ("scrapes", J.Int (Pvmon.scrapes mon));
        ("alerts", J.Int (List.length (Pvmon.alerts mon)));
        ("slow_ops", J.Int (List.length (Pvmon.slow_ops mon)));
        ("conservation", J.Bool conservation);
        ("deterministic", J.Bool deterministic);
        ( "attribution",
          J.List
            (List.map
               (fun (r : Pvmon.layer_row) ->
                 J.Obj
                   [
                     ("layer", J.Str r.Pvmon.lr_layer);
                     ("self_ns", J.Int r.Pvmon.lr_self_ns);
                     ("total_ns", J.Int r.Pvmon.lr_total_ns);
                     ("spans", J.Int r.Pvmon.lr_spans);
                   ])
               (Pvmon.attribution mon)) );
        ("artifact", J.Str pvmon_file);
      ]
  in
  (ok, json)

(* --- RECOVERY: bounded restart via checkpointing ----------------------------- *)

(* Grow the ingest history 1x/2x/4x and crash at the end of each run.
   With Every_frames checkpointing, restart replays only the post-
   watermark suffix, so the replayed frame count and the hot database's
   memory stay flat as history grows; without a checkpoint the replay is
   the whole history.  Gates: [bounded] (the checkpointed suffix does not
   grow with history while the full replay does) and [memory_flat] (hot
   bytes at 4x within 1.35x of 1x — expired versions live in the cold
   archive, not in memory). *)
let recovery_bench ~scale =
  section "RECOVERY: bounded restart via checkpointing";
  let okr what = function
    | Ok v -> v
    | Error e -> failwith (what ^ ": " ^ Vfs.errno_to_string e)
  in
  let run ~rounds ~checkpointed =
    let clock = Simdisk.Clock.create () in
    let disk = Simdisk.Disk.create ~clock () in
    let ext3 = Ext3.format disk in
    let ctx = Ctx.create ~machine:1 in
    let lasagna =
      Lasagna.create ~log_max:2048 ~lower:(Ext3.ops ext3) ~ctx ~volume:"vol0"
        ~charge:(Simdisk.Clock.advance clock) ()
    in
    (* the control retains every log but never checkpoints: restart is
       the original full-history replay *)
    let policy = if checkpointed then Waldo.Every_frames 64 else Waldo.Manual in
    let waldo =
      Waldo.create ~policy
        ?compact_keep:(if checkpointed then Some 2 else None)
        ~lower:(Ext3.ops ext3) ()
    in
    Waldo.attach waldo lasagna;
    let ep = Lasagna.endpoint lasagna in
    let mk i =
      let h =
        match ep.Dpapi.pass_mkobj ~volume:(Some "vol0") with
        | Ok h -> h
        | Error e -> failwith (Dpapi.error_to_string e)
      in
      disclose_ ep h [ Record.name (Printf.sprintf "rec%d" i) ];
      h
    in
    let files = Array.init 8 mk in
    for round = 1 to rounds do
      Array.iter
        (fun h ->
          disclose_ ep h [ Record.make "PARAMS" (Pvalue.Int round) ];
          let _ : (int, Dpapi.error) result = ep.Dpapi.pass_freeze h in
          ())
        files
    done;
    ignore (Waldo.finalize waldo lasagna : int);
    (* pull the plug and restart *)
    Simdisk.Disk.crash disk;
    Simdisk.Disk.revive disk;
    let ext3 = Ext3.mount disk in
    let before_ns = Simdisk.Clock.now clock in
    let w2, info =
      okr "recover"
        (Waldo.recover ~policy
           ?compact_keep:(if checkpointed then Some 2 else None)
           ~lower:(Ext3.ops ext3) ())
    in
    let recover_ns = Simdisk.Clock.now clock - before_ns in
    (info, recover_ns, Provdb.total_bytes (Waldo.db w2))
  in
  let base = max 6 (int_of_float (48. *. scale)) in
  let histories = [ (1, base); (2, 2 * base); (4, 4 * base) ] in
  let rows =
    List.map
      (fun (mult, rounds) ->
        let info, ckpt_ns, hot_bytes = run ~rounds ~checkpointed:true in
        let full, full_ns, full_bytes = run ~rounds ~checkpointed:false in
        Printf.printf
          "  history %dx (%3d rounds): replay %4d frames / %9d ns (checkpointed)  vs  %4d frames / %9d ns (full)\n"
          mult rounds info.Waldo.ri_frames_replayed ckpt_ns
          full.Waldo.ri_frames_replayed full_ns;
        Printf.printf
          "    gen %d, watermark %d, %d archive segment(s); hot db %d bytes vs %d unchecked\n"
          info.Waldo.ri_gen info.Waldo.ri_watermark info.Waldo.ri_archives hot_bytes
          full_bytes;
        (mult, rounds, info, ckpt_ns, hot_bytes, full, full_ns))
      histories
  in
  let nth i = List.nth rows i in
  let _, _, i1, _, bytes1, _, _ = nth 0 in
  let _, _, _, _, bytes2, _, _ = nth 1 in
  let _, _, i4, ns4, bytes4, f4, full_ns4 = nth 2 in
  let replay_frames_max =
    List.fold_left
      (fun acc (_, _, i, _, _, _, _) -> max acc i.Waldo.ri_frames_replayed)
      0 rows
  in
  (* the checkpointed suffix is bounded by the checkpoint interval (plus a
     log tail), not by history; the full replay grows with history *)
  let bounded =
    i4.Waldo.ri_frames_replayed <= i1.Waldo.ri_frames_replayed + 128
    && 4 * i4.Waldo.ri_frames_replayed <= f4.Waldo.ri_frames_replayed
    && ns4 < full_ns4
    && List.for_all (fun (_, _, i, _, _, _, _) -> i.Waldo.ri_manifest) rows
  in
  (* hot size depends on where in the checkpoint cycle the crash lands
     (the not-yet-covered suffix lives hot), so compare 4x against the
     larger of the two shorter histories, not against 1x alone *)
  let memory_flat =
    float_of_int bytes4 <= 1.35 *. float_of_int (max bytes1 bytes2)
  in
  Printf.printf "  suffix bounded as history grows: %s\n"
    (if bounded then "ok" else "FAILED");
  Printf.printf "  hot-tier memory flat (4x vs shorter = %.2f): %s\n"
    (float_of_int bytes4 /. float_of_int (max 1 (max bytes1 bytes2)))
    (if memory_flat then "ok" else "FAILED");
  let row_json (mult, rounds, (i : Waldo.recovery_info), ns, bytes, (f : Waldo.recovery_info), fns) =
    J.Obj
      [
        ("history", J.Int mult);
        ("rounds", J.Int rounds);
        ("replay_frames", J.Int i.Waldo.ri_frames_replayed);
        ("recover_ns", J.Int ns);
        ("hot_bytes", J.Int bytes);
        ("generation", J.Int i.Waldo.ri_gen);
        ("archives", J.Int i.Waldo.ri_archives);
        ("full_replay_frames", J.Int f.Waldo.ri_frames_replayed);
        ("full_recover_ns", J.Int fns);
      ]
  in
  let json =
    J.Obj
      [
        ("bounded", J.Bool bounded);
        ("memory_flat", J.Bool memory_flat);
        ("replay_frames_max", J.Int replay_frames_max);
        ("histories", J.List (List.map row_json rows));
      ]
  in
  (bounded && memory_flat, json)

(* --- QUERY: planner vs naive evaluator (ISSUE 9) ------------------------------ *)

(* A synthetic provenance graph of [n] file nodes with heap-shaped
   ancestry: node i's input is node (i-1)/2, so every node's transitive
   ancestry cone is its root path (~log2 n nodes).  Each node gets a
   distinct NAME, making the name index maximally selective.  This is the
   shape where the cost-based planner should win by orders of magnitude:
   a selective ancestry query touches O(result) nodes via the name index
   while the naive evaluator enumerates every file binding (O(graph)). *)
let query_graph n =
  let db = Provdb.create () in
  let alloc = Pass_core.Pnode.allocator ~machine:9 in
  let nodes = Array.init n (fun _ -> Pass_core.Pnode.fresh alloc) in
  for i = 0 to n - 1 do
    Provdb.set_file db nodes.(i) ~name:(Printf.sprintf "f%d" i);
    if i > 0 then
      Provdb.add_record db nodes.(i) ~version:0 (Record.input_of nodes.((i - 1) / 2) 0)
  done;
  db

(* wall-clock one run; queries here are large enough that a single
   measurement is stable to well under the 10x margin the gate checks *)
let time_run f =
  let t0 = Sys.time () in
  let result = f () in
  (result, Sys.time () -. t0)

let query_bench ~scale =
  section "QUERY: cost-based planner vs naive evaluator";
  let sizes =
    List.filter_map
      (fun base ->
        let n = int_of_float (float_of_int base *. scale) in
        if n >= 1_000 then Some (max 10_000 n) else None)
      [ 10_000; 32_000; 100_000 ]
  in
  let sizes = List.sort_uniq Int.compare sizes in
  let results =
    List.map
      (fun n ->
        let db = query_graph n in
        (* set equality of row sets, via the rendered (name.version) rows:
           names are distinct here so rendering is injective *)
        let canon rows = List.sort (List.compare String.compare) (Pql.render db rows) in
        let rows_eq a b = List.equal (List.equal String.equal) (canon a) (canon b) in
        (* selective: ancestry of one named file — O(result) via the
           name index, O(graph) naively *)
        let needle = Printf.sprintf "f%d" (n - 1) in
        let selective =
          Printf.sprintf
            {|select A from Provenance.file as F F.input* as A where F.name = "%s"|} needle
        in
        let ast = Pql.parse selective in
        let prepared = Pql.Engine.prepare_ast db ast in
        let planner_rows, planner_s = time_run (fun () -> Pql.Engine.execute prepared) in
        let naive_rows, naive_s = time_run (fun () -> Pql_eval.reference_rows db ast) in
        let rows_equal = rows_eq planner_rows naive_rows in
        let speedup = if planner_s > 0. then naive_s /. planner_s else 1e9 in
        (* full scan: a glob the index cannot serve; both sides O(graph),
           so the planner must not regress it *)
        let full = {|select F from Provenance.file as F where F.name ~ "f1*"|} in
        let full_ast = Pql.parse full in
        let fp = Pql.Engine.prepare_ast db full_ast in
        let full_planner_rows, full_planner_s = time_run (fun () -> Pql.Engine.execute fp) in
        let full_naive_rows, full_naive_s =
          time_run (fun () -> Pql_eval.reference_rows db full_ast)
        in
        let full_equal = rows_eq full_planner_rows full_naive_rows in
        Printf.printf
          "  n=%-7d selective: planner %8.2f ms, naive %8.2f ms  (%6.1fx, %d rows, equal=%b)\n"
          n (planner_s *. 1e3) (naive_s *. 1e3) speedup (List.length planner_rows) rows_equal;
        Printf.printf
          "            full-scan: planner %8.2f ms, naive %8.2f ms  (%d rows, equal=%b)\n"
          (full_planner_s *. 1e3) (full_naive_s *. 1e3)
          (List.length full_planner_rows) full_equal;
        (n, speedup, rows_equal && full_equal,
         J.Obj
           [
             ("nodes", J.Int n);
             ("selective_planner_ms", J.Float (planner_s *. 1e3));
             ("selective_naive_ms", J.Float (naive_s *. 1e3));
             ("selective_speedup", J.Float speedup);
             ("selective_rows", J.Int (List.length planner_rows));
             ("full_planner_ms", J.Float (full_planner_s *. 1e3));
             ("full_naive_ms", J.Float (full_naive_s *. 1e3));
             ("full_rows", J.Int (List.length full_planner_rows));
             ("rows_equal", J.Bool (rows_equal && full_equal));
           ]))
      sizes
  in
  let all_equal = List.for_all (fun (_, _, eq, _) -> eq) results in
  let _, largest_speedup, _, _ = List.nth results (List.length results - 1) in
  let ok = all_equal && largest_speedup >= 10.0 in
  Printf.printf "  gate: rows equal at every size = %b; largest-size speedup %.1fx >= 10x = %b\n"
    all_equal largest_speedup (largest_speedup >= 10.0);
  ( ok,
    J.Obj
      [
        ("ok", J.Bool ok);
        ("selective_speedup", J.Float largest_speedup);
        ("sizes", J.List (List.map (fun (_, _, _, j) -> j) results));
      ] )

(* --- Bechamel microbenchmarks ------------------------------------------------- *)

let microbench () =
  section "MICRO: Bechamel microbenchmarks";
  let open Bechamel in
  (* TABLE2's hot path: the analyzer processing one record *)
  let bench_analyzer =
    let ctx = Ctx.create ~machine:1 in
    let an = Analyzer.create ~ctx ~lower:(null_endpoint ctx) () in
    let ep = Analyzer.endpoint an in
    let f = Dpapi.handle ~volume:"v" (Ctx.fresh ctx) in
    let p = Dpapi.handle (Ctx.fresh ctx) in
    let i = ref 0 in
    Test.make ~name:"table2:analyzer-record"
      (Staged.stage (fun () ->
           incr i;
           disclose_ ep f [ Record.input_of p.pnode (!i land 7) ]))
  in
  (* TABLE3's hot path: Waldo ingesting a record into the database *)
  let bench_provdb =
    let db = Provdb.create () in
    let alloc = Pass_core.Pnode.allocator ~machine:3 in
    let target = Pass_core.Pnode.fresh alloc in
    let i = ref 0 in
    Test.make ~name:"table3:provdb-insert"
      (Staged.stage (fun () ->
           incr i;
           Provdb.add_record db target ~version:0
             (Record.make "PARAMS" (Pvalue.Str (string_of_int (!i land 1023))))))
  in
  (* FIG1's hot path: the paper's PQL query over a challenge run *)
  let bench_pql =
    let sys = System.create ~mode:System.Pass ~machine:1 ~volume_names:[ "vol0" ] () in
    let pid = Kernel.fork (System.kernel sys) ~parent:Kernel.init_pid in
    let io = Kepler_run.io_of_system sys ~pid in
    Challenge.prepare_inputs ~input_dir:"/vol0/in" io;
    let _ : Director.result =
      Kepler_run.run sys ~pid (Challenge.workflow ~input_dir:"/vol0/in" ~output_dir:"/vol0/out")
    in
    ignore (System.drain sys : int);
    let db = Option.get (System.waldo_db sys "vol0") in
    let query =
      {|select Ancestor from Provenance.file as Atlas Atlas.input* as Ancestor
        where Atlas.name = "atlas-x.gif"|}
    in
    let prepared = Pql.Engine.prepare db query in
    Test.make ~name:"fig1:pql-ancestry-query"
      (Staged.stage (fun () -> ignore (Pql.Engine.execute prepared : Pql.row list)))
  in
  (* TABLE1's serialization path: the WAP log frame encoder *)
  let bench_wap =
    let alloc = Pass_core.Pnode.allocator ~machine:4 in
    let h = Dpapi.handle ~volume:"v" (Pass_core.Pnode.fresh alloc) in
    let bundle = [ Dpapi.entry h [ Record.name "f"; Record.input_of h.pnode 0 ] ] in
    Test.make ~name:"table1:wap-frame-encode"
      (Staged.stage (fun () ->
           ignore
             (Wap_log.encode_frame (Wap_log.Bundle { txn = None; bundle; data = None })
               : string)))
  in
  let run_one test =
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:None () in
    let raw = Benchmark.all cfg [ instance ] test in
    let results =
      Analyze.all
        (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
        instance raw
    in
    Hashtbl.fold
      (fun name result acc ->
        match Analyze.OLS.estimates result with
        | Some [ est ] ->
            Printf.printf "  %-32s %10.1f ns/op\n" name est;
            (name, Some est) :: acc
        | _ ->
            Printf.printf "  %-32s (no estimate)\n" name;
            (name, None) :: acc)
      results []
  in
  List.concat_map run_one [ bench_analyzer; bench_provdb; bench_pql; bench_wap ]

(* --- machine-readable results ------------------------------------------------ *)

(* Cross-check the telemetry registry against the legacy per-module stats
   views on a fresh PA-Kepler run: CI fails the bench-smoke job when the
   two disagree or when the pipeline did no work at all. *)
let self_check () =
  section "SELF-CHECK: telemetry vs legacy stats views";
  let registry = Telemetry.create () in
  let sys =
    System.create ~registry ~mode:System.Pass ~machine:1 ~volume_names:[ "vol0" ] ()
  in
  Kepler_wl.run sys ~parent:Kernel.init_pid;
  ignore (System.drain sys : int);
  let stack = Option.get (Kernel.pass_stack (System.kernel sys)) in
  let an = Analyzer.stats stack.Kernel.analyzer in
  let vol = List.hd (System.volumes sys) in
  let las = Lasagna.stats (Option.get vol.System.v_lasagna) in
  let tv name = Option.value (Telemetry.counter_value registry name) ~default:(-1) in
  let pairs =
    [
      ("analyzer.records_in", tv "analyzer.records_in", an.Analyzer.records_in);
      ("analyzer.records_out", tv "analyzer.records_out", an.Analyzer.records_out);
      ( "analyzer.duplicates_dropped",
        tv "analyzer.duplicates_dropped",
        an.Analyzer.duplicates_dropped );
      ("wap.frames_written", tv "wap.frames_written", las.Lasagna.frames_logged);
      ("wap.bytes_written", tv "wap.bytes_written", las.Lasagna.prov_bytes_logged);
    ]
  in
  let ok =
    List.for_all (fun (_, t, l) -> t = l) pairs
    && an.Analyzer.records_in > 0
    && las.Lasagna.frames_logged > 0
  in
  List.iter
    (fun (name, t, l) ->
      Printf.printf "  %-30s telemetry %8d  legacy %8d  %s\n" name t l
        (if t = l then "ok" else "MISMATCH"))
    pairs;
  Printf.printf "  self-check: %s\n" (if ok then "ok" else "FAILED");
  let counters =
    J.Obj
      (List.map (fun (name, t, l) -> (name, J.Obj [ ("telemetry", J.Int t); ("legacy", J.Int l) ]))
         pairs)
  in
  (ok, J.Obj [ ("ok", J.Bool ok); ("counters", counters) ])

let results_file = "BENCH_results.json"

let write_results ~scale ~registry ~local ~nfs ~space ~self_check ~faults ~trace ~monitor
    ~recovery ~query ~micro =
  let row_json (r : Runner.row) =
    J.Obj
      [
        ("base_seconds", J.Float r.Runner.base_seconds);
        ("pass_seconds", J.Float r.Runner.pass_seconds);
        ("overhead_pct", J.Float r.Runner.overhead_pct);
      ]
  in
  let space_json (s : Runner.space_row) =
    J.Obj
      [
        ("ext3_mb", J.Float s.Runner.ext3_mb);
        ("prov_mb", J.Float s.Runner.prov_mb);
        ("prov_pct", J.Float s.Runner.prov_pct);
        ("total_mb", J.Float s.Runner.total_mb);
        ("total_pct", J.Float s.Runner.total_pct);
      ]
  in
  let workloads =
    List.map2
      (fun (l, n) (sp : Runner.space_row) ->
        J.Obj
          [
            ("name", J.Str sp.Runner.s_name);
            ("local", row_json l);
            ("nfs", row_json n);
            ("space", space_json sp);
          ])
      (List.combine local nfs) space
  in
  let micro_json =
    J.Obj
      (List.map
         (fun (name, est) ->
           (name, match est with Some ns -> J.Float ns | None -> J.Null))
         (List.sort (fun (a, _) (b, _) -> String.compare a b) micro))
  in
  let doc =
    J.Obj
      [
        ("schema", J.Str "pass-bench/v1");
        ("scale", J.Float scale);
        ("workloads", J.List workloads);
        ("self_check", self_check);
        ("faults", faults);
        ("trace", trace);
        ("monitor", monitor);
        ("recovery", recovery);
        ("query", query);
        ("telemetry", Telemetry.snapshot registry);
        ("micro", micro_json);
      ]
  in
  let oc = open_out results_file in
  output_string oc (J.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s\n" results_file

let () =
  Printf.printf "PASSv2 reproduction benchmark harness\n";
  Printf.printf "(simulated time: see DESIGN.md for the substrate cost model)\n";
  fig2 ();
  let scale, registry, local, nfs, space = table2_and_3 () in
  fig1 ();
  section "TABLE1: record-type registry";
  Report.table1 Format.std_formatter;
  ablation_cycles ();
  ablation_dedup ();
  ablation_wap ();
  ablation_nfs_txn ();
  let faults_ok, faults = fault_bench () in
  let trace_ok, trace = trace_bench ~scale in
  let monitor_ok, monitor = monitor_bench ~scale in
  let recovery_ok, recovery = recovery_bench ~scale in
  let query_ok, query = query_bench ~scale in
  let micro = microbench () in
  let check_ok, self_check = self_check () in
  write_results ~scale ~registry ~local ~nfs ~space ~self_check ~faults ~trace ~monitor
    ~recovery ~query ~micro;
  Printf.printf "\ndone.\n";
  if not (check_ok && faults_ok && trace_ok && monitor_ok && recovery_ok && query_ok) then exit 1
